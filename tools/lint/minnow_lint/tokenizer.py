"""C++ tokenizer for minnow-lint.

Produces a stream of code tokens (identifiers, numbers, string/char
literals, punctuators) plus a side list of comments and preprocessor
directives. Line numbers are 1-based. The tokenizer understands:

  - // and /* */ comments (multi-line),
  - string, char, and raw string literals (R"delim(...)delim"),
  - preprocessor lines including backslash continuations,
  - multi-character punctuators (::, ->, ==, <=, +=, <<, ...).

'>' is always emitted as a single-character token (never '>>') so
template-argument scanning can match angle brackets without caring
about the shift-operator ambiguity; '<<' IS combined since it never
closes a template.
"""

from dataclasses import dataclass


@dataclass
class Token:
    kind: str  # 'id' | 'num' | 'str' | 'char' | 'punct'
    text: str
    line: int


@dataclass
class Comment:
    line: int  # line the comment starts on
    text: str  # comment text without the // or /* */ fences


@dataclass
class PpLine:
    line: int
    text: str  # full directive text, continuations joined


# Multi-char punctuators, longest first. '>>' deliberately absent.
_PUNCTS = [
    "<<=", "...", "->*", "::", "->", "++", "--", "==", "!=", "<=",
    ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=", "<<", ".*",
]

_ID_START = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")
_DIGITS = set("0123456789")


class TokenizeError(Exception):
    pass


def tokenize(text, path="<input>"):
    """Return (tokens, comments, pp_lines) for C++ source `text`."""
    tokens = []
    comments = []
    pp_lines = []
    i = 0
    n = len(text)
    line = 1
    at_line_start = True

    while i < n:
        c = text[i]

        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue

        # Preprocessor directive: '#' first non-ws on the line.
        if c == "#" and at_line_start:
            start_line = line
            buf = []
            while i < n:
                if text[i] == "\\" and i + 1 < n and \
                        text[i + 1] == "\n":
                    i += 2
                    line += 1
                    buf.append(" ")
                    continue
                if text[i] == "\n":
                    break
                buf.append(text[i])
                i += 1
            pp_lines.append(PpLine(start_line, "".join(buf)))
            continue

        at_line_start = False

        # Comments.
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            start_line = line
            j = text.find("\n", i)
            if j < 0:
                j = n
            comments.append(Comment(start_line, text[i + 2:j]))
            i = j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            start_line = line
            j = text.find("*/", i + 2)
            if j < 0:
                raise TokenizeError(
                    "%s:%d: unterminated block comment"
                    % (path, start_line))
            body = text[i + 2:j]
            comments.append(Comment(start_line, body))
            line += body.count("\n")
            i = j + 2
            continue

        # Raw string literal: R"delim( ... )delim"  (with optional
        # encoding prefix we don't distinguish).
        if c == "R" and i + 1 < n and text[i + 1] == '"':
            j = text.find("(", i + 2)
            if j < 0:
                raise TokenizeError(
                    "%s:%d: malformed raw string" % (path, line))
            delim = text[i + 2:j]
            endmark = ")" + delim + '"'
            k = text.find(endmark, j + 1)
            if k < 0:
                raise TokenizeError(
                    "%s:%d: unterminated raw string" % (path, line))
            lit = text[i:k + len(endmark)]
            tokens.append(Token("str", lit, line))
            line += lit.count("\n")
            i = k + len(endmark)
            continue

        # String / char literals.
        if c == '"' or c == "'":
            start_line = line
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == "\n":
                    line += 1
                if text[j] == quote:
                    break
                j += 1
            if j >= n:
                raise TokenizeError(
                    "%s:%d: unterminated %s literal"
                    % (path, start_line,
                       "string" if quote == '"' else "char"))
            tokens.append(
                Token("str" if quote == '"' else "char",
                      text[i:j + 1], start_line))
            i = j + 1
            continue

        # Identifiers / keywords.
        if c in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            tokens.append(Token("id", text[i:j], line))
            i = j
            continue

        # Numbers (incl. hex, digit separators, suffixes, floats).
        if c in _DIGITS or (c == "." and i + 1 < n and
                            text[i + 1] in _DIGITS):
            j = i + 1
            while j < n and (text[j] in _ID_CONT or text[j] == "." or
                             (text[j] in "+-" and
                              text[j - 1] in "eEpP")):
                j += 1
            tokens.append(Token("num", text[i:j], line))
            i = j
            continue

        # Punctuators, longest match first.
        matched = False
        for p in _PUNCTS:
            if text.startswith(p, i):
                tokens.append(Token("punct", p, line))
                i += len(p)
                matched = True
                break
        if not matched:
            tokens.append(Token("punct", c, line))
            i += 1

    return tokens, comments, pp_lines
