"""Whole-program model: call graph + include graph + layer DAG.

Built once per lint run from every FileModel in the scan, this is
what lifts minnow-lint from a per-translation-unit scanner to a
whole-program analyzer (DESIGN.md 5l). It derives:

  - a *function index*: every method and free function in the scan,
    keyed by qualified name ("Class::method" / "freeFunction"),
    with per-function facts the rules need (is it a coroutine, does
    its header mention CoTask, its reference/pointer parameters);

  - a *call graph*: edges from each function to the definitions its
    body may call. Resolution is conservative by design: a bare call
    `f(...)` binds to the same-class `f` when one exists, else to
    every definition named `f` in the project; a member call
    `recv.f(...)` binds to every class that defines `f` (the
    overload-set / virtual-dispatch approximation — we cannot know
    the receiver's static type from tokens, so we over-approximate
    the callee set and rules stay sound for reachability queries);

  - an *include graph*: `#include "..."` edges resolved against the
    scanned file set by path-suffix match (the project convention is
    src-relative includes, "runtime/machine.hh"), collapsed onto the
    layer assignment from tools/lint/layers.toml;

  - the *layer DAG*: layers.toml lists layers lowest-first; a file's
    layer is the first whose directory prefix matches. An include
    may only point at the same or a lower layer; exceptions live in
    the same file as reviewed [[allow]] entries with reasons.

Known approximations (also documented in DESIGN.md 5l): no template
instantiation, no overload resolution by arity/type, function-pointer
and coroutine-handle indirection invisible, `#include <...>` system
headers ignored. Every rule built on this model is written so an
over-approximated edge can only widen a reachability answer, never
invent a taint path out of thin air (taint still requires a real
token-level source call).
"""

import os
from dataclasses import dataclass, field

try:
    import tomllib as _toml
except ImportError:  # pragma: no cover - python < 3.11
    _toml = None


@dataclass
class FuncInfo:
    key: str            # unique key: "path::Class::name#line"
    qual: str           # "Class::name" or "name"
    cls: str            # owning class name or ""
    name: str           # base name
    path: str
    line: int
    method: object      # the cpp_model.Method
    is_coroutine: bool = False   # body contains co_await/co_yield
    returns_cotask: bool = False  # header mentions CoTask
    callees: set = field(default_factory=set)  # resolved FuncInfo keys
    call_sites: list = field(default_factory=list)  # (base_name, line)


@dataclass
class IncludeEdge:
    from_path: str
    to_path: str    # resolved scanned path ('' if unresolved)
    target: str     # the literal include string
    line: int


@dataclass
class Layers:
    """Parsed tools/lint/layers.toml."""
    names: list = field(default_factory=list)   # lowest layer first
    dirs: list = field(default_factory=list)    # [(prefix, name)]
    allows: list = field(default_factory=list)  # [(from, to, reason)]

    def layer_of(self, path):
        """(name, level) for `path`, or (None, None) if unlayered."""
        p = path.replace("\\", "/")
        for prefix, name in self.dirs:
            if p.startswith(prefix.rstrip("/") + "/"):
                return name, self.names.index(name)
        return None, None

    def allowed(self, from_path, to_path):
        """Reason string if the edge is allowlisted, else None."""
        f = from_path.replace("\\", "/")
        t = to_path.replace("\\", "/")
        for afrom, ato, reason in self.allows:
            if f.startswith(afrom) and t.startswith(ato):
                return reason
        return None


class LayersError(Exception):
    """layers.toml is missing required fields or malformed."""


def load_layers(root, rel="tools/lint/layers.toml"):
    """Parse layers.toml under `root`. Returns None when the file
    does not exist (layer checking is then skipped); raises
    LayersError on a malformed file — a bad config must fail the
    run loudly, not silently disable the DAG check."""
    full = os.path.join(root, rel)
    if not os.path.isfile(full) or _toml is None:
        return None
    with open(full, "rb") as f:
        try:
            doc = _toml.load(f)
        except _toml.TOMLDecodeError as e:
            raise LayersError("%s: %s" % (rel, e))
    layers = Layers()
    for entry in doc.get("layer", []):
        name = entry.get("name")
        dirs = entry.get("dirs")
        if not name or not isinstance(dirs, list) or not dirs:
            raise LayersError(
                "%s: every [[layer]] needs name and dirs" % rel)
        if name in layers.names:
            raise LayersError(
                "%s: duplicate layer '%s'" % (rel, name))
        layers.names.append(name)
        for d in dirs:
            layers.dirs.append((d.replace("\\", "/"), name))
    for entry in doc.get("allow", []):
        afrom = entry.get("from")
        ato = entry.get("to")
        reason = entry.get("reason", "").strip()
        if not afrom or not ato or not reason:
            raise LayersError(
                "%s: every [[allow]] needs from, to and a non-empty "
                "reason" % rel)
        layers.allows.append((afrom, ato, reason))
    if not layers.names:
        raise LayersError("%s: no [[layer]] entries" % rel)
    return layers


def _iter_defs(model):
    """Yield (cls_name, Method) for every definition in a file."""
    for fn in model.functions:
        yield fn.cls, fn
    for cls in model.classes:
        for m in cls.methods:
            yield cls.name, m


def _has_coro_keyword(body):
    return any(t.kind == "id" and
               t.text in ("co_await", "co_yield", "co_return")
               for t in body)


def _suspends(body):
    return any(t.kind == "id" and t.text in ("co_await", "co_yield")
               for t in body)


_NOT_CALL_PREV = {"~"}

# Identifier-like tokens that look like calls but never are (control
# flow, casts, declarations-of-builtins). Keeps the call graph from
# drowning in junk edges.
_NOT_CALLS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "co_await", "co_return", "co_yield", "static_cast",
    "dynamic_cast", "reinterpret_cast", "const_cast", "new",
    "delete", "catch", "assert", "decltype", "noexcept", "alignas",
    "defined", "static_assert",
}


def body_calls(body):
    """[(base_name, line)] for every call-shaped site in `body`."""
    out = []
    n = len(body)
    for i, t in enumerate(body):
        if t.kind != "id" or t.text in _NOT_CALLS:
            continue
        if i + 1 >= n or body[i + 1].kind != "punct" or \
                body[i + 1].text != "(":
            continue
        if i > 0 and body[i - 1].kind == "punct" and \
                body[i - 1].text in _NOT_CALL_PREV:
            continue
        out.append((t.text, t.line))
    return out


class ProjectModel:
    """Merged view of every scanned FileModel (see module doc)."""

    def __init__(self, models, layers=None):
        self.models = list(models)
        self.layers = layers
        self.functions = {}      # key -> FuncInfo
        self._by_method = {}     # id(Method) -> key
        self.by_name = {}        # base name -> [key]
        self.by_class = {}       # class name -> [key]
        self.classes = {}        # class name -> merged view dict
        self.include_edges = []  # [IncludeEdge]
        self._build_functions()
        self._build_call_graph()
        self._build_includes()

    # -- construction ---------------------------------------------------

    def _build_functions(self):
        for model in self.models:
            for cls_name, m in _iter_defs(model):
                base = m.name.split("::")[-1]
                qual = (cls_name + "::" + base) if cls_name else base
                key = "%s::%s#%d" % (model.path, qual, m.line)
                fi = FuncInfo(
                    key=key, qual=qual, cls=cls_name, name=base,
                    path=model.path, line=m.line, method=m,
                    is_coroutine=_has_coro_keyword(m.body),
                    returns_cotask=any(
                        t.kind == "id" and t.text == "CoTask"
                        for t in m.header),
                )
                self.functions[key] = fi
                self._by_method[id(m)] = key
                self.by_name.setdefault(base, []).append(key)
                if cls_name:
                    self.by_class.setdefault(cls_name, []).append(key)
        # Merged class view: members + methods across all files.
        for model in self.models:
            for cls in model.classes:
                e = self.classes.setdefault(
                    cls.name, {"members": [], "methods": [],
                               "path": model.path, "line": cls.line})
                e["members"].extend(
                    (model.path, mem) for mem in cls.members)
                e["methods"].extend(
                    (model.path, m) for m in cls.methods)
            for fn in model.functions:
                if fn.cls:
                    e = self.classes.setdefault(
                        fn.cls, {"members": [], "methods": [],
                                 "path": model.path, "line": fn.line})
                    e["methods"].append((model.path, fn))

    def _build_call_graph(self):
        for fi in self.functions.values():
            fi.call_sites = body_calls(fi.method.body)
            for name, _line in fi.call_sites:
                for key in self._resolve(fi, name):
                    fi.callees.add(key)

    def _resolve(self, caller, name):
        """Callee keys a call to `name` from `caller` may reach.

        Same-class definitions win for bare calls; otherwise the
        whole overload set (every definition with that base name)
        is the conservative answer.
        """
        targets = self.by_name.get(name)
        if not targets:
            return ()
        if caller.cls:
            same = [k for k in targets
                    if self.functions[k].cls == caller.cls]
            if same:
                return same
        return targets

    def _build_includes(self):
        # Path-suffix resolution table: "runtime/machine.hh" must
        # resolve to the scanned src/runtime/machine.hh.
        paths = [m.path.replace("\\", "/") for m in self.models]
        for model in self.models:
            for pp in model.pp:
                text = pp.text.strip()
                if not text.startswith("#"):
                    continue
                rest = text[1:].strip()
                if not rest.startswith("include"):
                    continue
                rest = rest[len("include"):].strip()
                if not rest.startswith('"'):
                    continue  # system headers are out of scope
                end = rest.find('"', 1)
                if end < 0:
                    continue
                target = rest[1:end]
                resolved = ""
                for p in paths:
                    if p == target or p.endswith("/" + target):
                        resolved = p
                        break
                self.include_edges.append(IncludeEdge(
                    from_path=model.path, to_path=resolved,
                    target=target, line=pp.line))

    # -- queries --------------------------------------------------------

    def funcs_named(self, name):
        return [self.functions[k]
                for k in self.by_name.get(name, ())]

    def func_of(self, method):
        """FuncInfo for a cpp_model.Method seen during the scan."""
        key = self._by_method.get(id(method))
        return self.functions.get(key) if key else None

    def class_funcs(self, cls_name):
        return [self.functions[k]
                for k in self.by_class.get(cls_name, ())]

    def reachable_from(self, key, max_depth=6, same_class=None):
        """Set of FuncInfo keys reachable from `key` through the
        call graph, within `max_depth` edges. `same_class` restricts
        traversal to methods of that class plus free functions
        (the shape class-local protocols like E1/L2 need)."""
        seen = {key}
        frontier = [key]
        depth = 0
        while frontier and depth < max_depth:
            nxt = []
            for k in frontier:
                fi = self.functions.get(k)
                if fi is None:
                    continue
                for c in fi.callees:
                    if c in seen:
                        continue
                    cf = self.functions[c]
                    if same_class is not None and cf.cls and \
                            cf.cls != same_class:
                        continue
                    seen.add(c)
                    nxt.append(c)
            frontier = nxt
            depth += 1
        return seen

    def taint_closure(self, source_names, max_depth=3):
        """Keys of functions whose *return value* may carry a value
        from one of `source_names`, through at most `max_depth`
        call layers.

        Depth 1: the body both calls a source and returns something.
        Depth k: the body calls a depth-(k-1) tainted function and
        returns something. A function that calls a source but never
        returns a value cannot forward taint through its result
        (it may still sink it locally — the rule checks bodies for
        that separately).
        """
        tainted = {}  # key -> depth
        names = set(source_names)

        def returns_value(fi):
            body = fi.method.body
            for i, t in enumerate(body):
                if t.kind == "id" and t.text == "return" and \
                        i + 1 < len(body) and \
                        not (body[i + 1].kind == "punct" and
                             body[i + 1].text == ";"):
                    return True
                if t.kind == "id" and t.text == "co_return" and \
                        i + 1 < len(body) and \
                        not (body[i + 1].kind == "punct" and
                             body[i + 1].text == ";"):
                    return True
            return False

        for fi in self.functions.values():
            if any(n in names for n, _l in fi.call_sites) and \
                    returns_value(fi):
                tainted[fi.key] = 1

        for depth in range(2, max_depth + 1):
            grew = False
            prev_names = {self.functions[k].name
                          for k, d in tainted.items()
                          if d == depth - 1}
            if not prev_names:
                break
            for fi in self.functions.values():
                if fi.key in tainted:
                    continue
                if any(n in prev_names for n, _l in fi.call_sites) \
                        and returns_value(fi):
                    tainted[fi.key] = depth
                    grew = True
            if not grew:
                break
        return tainted

    def include_cycles(self):
        """File-level include cycles among resolved edges, as a list
        of cycles (each a list of paths, smallest-first rotation,
        deduplicated)."""
        graph = {}
        for e in self.include_edges:
            if e.to_path and e.to_path != e.from_path:
                graph.setdefault(e.from_path, set()).add(e.to_path)
        cycles = set()
        state = {}  # 0 unvisited implicit, 1 on stack, 2 done

        def dfs(node, stack):
            state[node] = 1
            stack.append(node)
            for nxt in sorted(graph.get(node, ())):
                s = state.get(nxt, 0)
                if s == 0:
                    dfs(nxt, stack)
                elif s == 1:
                    cyc = stack[stack.index(nxt):]
                    lo = min(range(len(cyc)), key=lambda i: cyc[i])
                    cycles.add(tuple(cyc[lo:] + cyc[:lo]))
            stack.pop()
            state[node] = 2

        for node in sorted(graph):
            if state.get(node, 0) == 0:
                dfs(node, [])
        return [list(c) for c in sorted(cycles)]

    def summary(self):
        """The `graph` block for --json and the CLI summary line."""
        layered = 0
        if self.layers is not None:
            for m in self.models:
                if self.layers.layer_of(m.path)[0] is not None:
                    layered += 1
        return {
            "files": len(self.models),
            "functions": len(self.functions),
            "call_edges": sum(len(f.callees)
                              for f in self.functions.values()),
            "include_edges": len(self.include_edges),
            "layers": (len(self.layers.names)
                       if self.layers is not None else 0),
            "layered_files": layered,
        }
