"""C1 `coro-suspend-safety`: no dangling references across co_await.

A CoTask coroutine's locals live in the frame and survive
suspension, but anything they *point into* does not have to: while
the coroutine is suspended, any other threadlet can run and mutate
the world. The PR 4 engine-teardown UAF and the PR 6 stranded-slot
bug are both this shape one level removed — state cached before a
suspension, invalid after it. Four concrete hazards are checked,
all inside bodies that both mention CoTask in their header and
contain a suspension keyword (co_await / co_yield):

 1. *Element references across suspension.* A reference or pointer
    local whose initializer indexes or calls into a container
    (`auto &w = workers_[i]`, `auto &s = q.front()`) that is read
    after a later suspension point in the same brace scope. The
    container can grow, rehash, or pop while suspended. References
    to plain members/objects (`auto &eq = eq_`) are exempt — the
    object identity is stable even if its value changes — and so
    are smart-pointer peeks (`tl = machine().timeline.get()`): the
    pointer is a copy and the owner is not an element that moves.

 2. *Reference parameters across suspension.* A by-reference
    parameter read after the first suspension point refers to
    caller-owned storage that outlives the caller's frame only if
    the caller awaits the task to completion — a detached or
    re-owned task reads freed stack. Two discharges: machine-
    lifetime service types (SimContext/ThreadletCtx/EventQueue/
    Machine/*Sink/...) are exempt because their referents live as
    long as the simulation; and — whole-program, via the
    ProjectModel — the finding is discharged when every visible
    call site of the coroutine in the scan directly `co_await`s it
    (the worklist pop/fill out-param API: the caller's frame
    provably outlives the callee). A coroutine handed to
    adoptThreadlet() has a non-awaited call site, so detached
    workers keep the check.

 3. *By-reference lambda captures that escape.* A `[&...]` lambda
    assigned to a local used after a later suspension, handed to a
    scheduling/container sink, or stored into a member outlives the
    locals it captured the moment the frame suspends and dies.

 4. *Stack-local addresses into non-awaited coroutines.* Passing
    `&local` to a CoTask-returning callee (resolved through the
    project call graph) without immediately co_await-ing the result
    detaches a coroutine holding a pointer into this frame.

Suppress knowingly-safe instances (fixed-size containers sized at
construction, node-stable maps) with
`// LINT-OK(coro-suspend-safety): reason`.
"""

from ..scan import match_paren, split_args

RULE_ID = "coro-suspend-safety"

DOC = ("references/pointers into containers, by-ref params and "
       "by-ref lambda captures must not be read across co_await "
       "in CoTask bodies")

# Parameter types whose referents are machine-lifetime: reading them
# after a suspension is the normal idiom, not a hazard. The second
# set is the executor-shared aggregates every detached worker
# coroutine borrows (the executor joins its workers before tearing
# these down); `*Sink`, `*Ctx` and `*Context` suffixes are exempted
# structurally in _ref_params.
_STABLE_PARAM_TYPES = {
    "EventQueue", "Machine", "Worklist", "App", "MinnowEngine",
    "StatsRegistry", "Graph", "Ckpt", "MemorySystem", "Timeline",
    "WorkerState", "BspShared", "WorklistRunStats",
}

# Call sinks through which a by-ref lambda escapes the frame.
_LAMBDA_SINKS = {
    "schedule", "scheduleCompact", "push_back", "emplace_back",
    "adoptThreadlet", "addCkptHook", "setHook", "defer",
}


def _suspend_points(body):
    return [i for i, t in enumerate(body)
            if t.kind == "id" and t.text in ("co_await", "co_yield")]


def _scope_end(body, i):
    """Index just past the enclosing brace scope of body[i] (end of
    body if the declaration sits at coroutine top level)."""
    depth = 0
    n = len(body)
    j = i
    while j < n:
        t = body[j]
        if t.kind == "punct":
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                if depth < 0:
                    return j
        j += 1
    return n


def _stmt_end(body, i):
    """Index of the ';' ending the statement at body[i] (skipping
    nested parens/braces)."""
    n = len(body)
    j = i
    while j < n:
        t = body[j]
        if t.kind == "punct":
            if t.text == "(":
                j = match_paren(body, j)
                continue
            if t.text == "{":
                depth = 0
                while j < n:
                    if body[j].kind == "punct":
                        if body[j].text == "{":
                            depth += 1
                        elif body[j].text == "}":
                            depth -= 1
                            if depth == 0:
                                break
                    j += 1
                j += 1
                continue
            if t.text == ";":
                return j
        j += 1
    return n


def _used_after(body, name, start, end):
    return any(body[k].kind == "id" and body[k].text == name
               for k in range(start, min(end, len(body))))


def _ref_local_decls(body):
    """[(index_of_name, name, init_tokens, semi_index)] for
    reference/pointer local declarations `... &name = init;`."""
    out = []
    n = len(body)
    for i in range(1, n - 2):
        t = body[i]
        if not (t.kind == "punct" and t.text in ("&", "*")):
            continue
        prev = body[i - 1]
        if not (prev.kind == "id" or
                (prev.kind == "punct" and prev.text == ">")):
            continue  # not a declarator position
        if not (body[i + 1].kind == "id" and
                body[i + 2].kind == "punct" and
                body[i + 2].text == "="):
            continue
        name = body[i + 1].text
        semi = _stmt_end(body, i + 3)
        out.append((i + 1, name, body[i + 3:semi], semi))
    return out


def _param_list(header):
    """Parameter token sublists from a function header."""
    n = len(header)
    i = 0
    paren = None
    while i < n:
        t = header[i]
        if t.kind == "punct" and t.text == "(":
            paren = i
            break
        i += 1
    if paren is None:
        return []
    args, _close = split_args(header, paren)
    return args


def _ref_params(header):
    """[(name, line)] for non-exempt by-reference parameters."""
    out = []
    for arg in _param_list(header):
        has_ref = any(t.kind == "punct" and t.text in ("&", "&&")
                      for t in arg)
        if not has_ref:
            continue
        ids = [t for t in arg if t.kind == "id"]
        if not ids:
            continue
        name_tok = ids[-1]
        type_ids = {t.text for t in ids[:-1]}
        if any(x in _STABLE_PARAM_TYPES or x.endswith("Ctx") or
               x.endswith("Context") or x.endswith("Sink")
               for x in type_ids):
            continue
        out.append((name_tok.text, name_tok.line))
    return out


def _callers_all_await(project, fi):
    """True when the scan sees at least one call site of `fi` and
    every one of them is directly co_await-ed (walking back over the
    receiver chain). The caller's frame then provably outlives the
    coroutine, so its by-ref params cannot dangle. Conservative by
    name: any same-named call anywhere (another overload, a
    same-named container op) that is not awaited keeps the finding."""
    seen_any = False
    for g in project.functions.values():
        body = g.method.body
        n = len(body)
        for i, t in enumerate(body):
            if not (t.kind == "id" and t.text == fi.name and
                    i + 1 < n and body[i + 1].kind == "punct" and
                    body[i + 1].text == "("):
                continue
            if i > 0 and body[i - 1].kind == "punct" and \
                    body[i - 1].text == "&":
                continue  # member-pointer mention, not a call
            seen_any = True
            k = i - 1
            while k > 0 and body[k].kind == "punct" and \
                    body[k].text in (".", "->", "::") and \
                    body[k - 1].kind == "id":
                k -= 2
            if not (k >= 0 and body[k].kind == "id" and
                    body[k].text == "co_await"):
                return False
    return seen_any


def _enclosing_call(body, i):
    """Base name of the innermost call whose argument list contains
    body[i], or None."""
    depth = 0
    j = i - 1
    while j >= 0:
        t = body[j]
        if t.kind == "punct":
            if t.text == ")":
                depth += 1
            elif t.text == "(":
                if depth == 0:
                    if j > 0 and body[j - 1].kind == "id":
                        return body[j - 1].text
                    return None
                depth -= 1
        j -= 1
    return None


def _lambda_regions(body):
    """[(open_bracket, close_bracket, by_ref)] for lambda capture
    lists: a '[' not preceded by a postfix expression."""
    out = []
    n = len(body)
    for i, t in enumerate(body):
        if not (t.kind == "punct" and t.text == "["):
            continue
        if i > 0:
            p = body[i - 1]
            if p.kind in ("id", "num") or \
                    (p.kind == "punct" and p.text in (")", "]")):
                continue  # subscript, not a capture list
        depth = 0
        j = i
        while j < n:
            if body[j].kind == "punct":
                if body[j].text == "[":
                    depth += 1
                elif body[j].text == "]":
                    depth -= 1
                    if depth == 0:
                        break
            j += 1
        if j >= n or j + 1 >= n:
            continue
        nxt = body[j + 1]
        if not (nxt.kind == "punct" and nxt.text in ("(", "{")):
            continue  # attribute or array bound, not a lambda
        by_ref = any(x.kind == "punct" and x.text == "&"
                     for x in body[i + 1:j])
        out.append((i, j, by_ref))
    return out


def _check_body(project, fi, findings):
    body = fi.method.body
    suspends = _suspend_points(body)
    if not suspends:
        return
    first_suspend = suspends[0]

    # 1. element references / pointers read across suspension.
    for name_ix, name, init, semi in _ref_local_decls(body):
        if not any(t.kind == "punct" and t.text in ("[", "(")
                   for t in init):
            continue  # plain member/object reference: stable
        if len(init) >= 3 and init[-1].text == ")" and \
                init[-2].text == "(" and \
                init[-3].kind == "id" and init[-3].text == "get" and \
                not any(t.kind == "punct" and t.text == "["
                        for t in init):
            continue  # smart-pointer .get() peek: pointer is a copy
                      # and the owner is not a moving element
        scope = _scope_end(body, name_ix)
        for s in suspends:
            if semi < s < scope and \
                    _used_after(body, name, s + 1, scope):
                findings.append(
                    (fi.path, body[name_ix].line, RULE_ID,
                     "'%s' in coroutine '%s' refers into a "
                     "container/call result and is read after a "
                     "co_await (line %d); the referent can move or "
                     "die while suspended — re-fetch it after the "
                     "await or take a copy" %
                     (name, fi.qual, body[s].line)))
                break

    # 2. by-reference parameters read after the first suspension —
    # unless every visible call site co_awaits this coroutine, in
    # which case the caller's frame provably outlives it.
    ref_params = [
        (pname, pline)
        for pname, pline in _ref_params(fi.method.header)
        if _used_after(body, pname, first_suspend + 1, len(body))]
    if ref_params and not _callers_all_await(project, fi):
        for pname, pline in ref_params:
            findings.append(
                (fi.path, pline, RULE_ID,
                 "by-reference parameter '%s' of coroutine '%s' is "
                 "read after a suspension point; it dangles unless "
                 "every caller co_awaits the task to completion — "
                 "pass by value or justify with a LINT-OK" %
                 (pname, fi.qual)))

    # 3. by-ref lambda captures that escape the frame.
    for open_b, close_b, by_ref in _lambda_regions(body):
        if not by_ref:
            continue
        line = body[open_b].line
        # Stored into a variable or member: `x = [&]...`.
        if open_b >= 2 and body[open_b - 1].kind == "punct" and \
                body[open_b - 1].text == "=" and \
                body[open_b - 2].kind == "id":
            target = body[open_b - 2].text
            scope = _scope_end(body, open_b)
            is_member = target.endswith("_")
            later = [s for s in suspends if s > close_b]
            if is_member or (later and _used_after(
                    body, target, later[0] + 1, scope)):
                findings.append(
                    (fi.path, line, RULE_ID,
                     "by-reference lambda stored in '%s' inside "
                     "coroutine '%s' outlives a suspension point; "
                     "its captures dangle once the frame suspends "
                     "— capture by value" % (target, fi.qual)))
            continue
        sink = _enclosing_call(body, open_b)
        if sink in _LAMBDA_SINKS:
            findings.append(
                (fi.path, line, RULE_ID,
                 "by-reference lambda passed to '%s' from "
                 "coroutine '%s' escapes the frame; captured "
                 "locals dangle at the next suspension — capture "
                 "by value" % (sink, fi.qual)))

    # 4. &local passed into a CoTask call that is not co_awaited.
    for name, cline in project.functions[fi.key].call_sites:
        targets = project.funcs_named(name)
        if not targets or not all(t.returns_cotask for t in targets):
            continue
        for i, t in enumerate(body):
            if not (t.kind == "id" and t.text == name and
                    t.line == cline and i + 1 < len(body) and
                    body[i + 1].kind == "punct" and
                    body[i + 1].text == "("):
                continue
            # Walk back over any receiver chain, then look for
            # co_await directly awaiting this call.
            k = i - 1
            while k > 0 and body[k].kind == "punct" and \
                    body[k].text in (".", "->", "::") and \
                    body[k - 1].kind == "id":
                k -= 2
            awaited = k >= 0 and body[k].kind == "id" and \
                body[k].text == "co_await"
            if awaited:
                continue
            args, _close = split_args(body, i + 1)
            for arg in args:
                if len(arg) >= 2 and arg[0].kind == "punct" and \
                        arg[0].text == "&" and arg[1].kind == "id":
                    findings.append(
                        (fi.path, t.line, RULE_ID,
                         "'&%s' (a frame local of coroutine '%s') "
                         "is passed to CoTask '%s' without "
                         "co_await; the detached coroutine keeps a "
                         "pointer into this frame" %
                         (arg[1].text, fi.qual, name)))
                    break


def check_project(project):
    findings = []
    for fi in project.functions.values():
        if fi.returns_cotask and fi.is_coroutine:
            _check_body(project, fi, findings)
    return findings
