"""S1 `serializer-coverage`: checkpointed classes must cover members.

A class that defines a `checkpoint(ckpt::Ckpt &)` visitor promises
that its complete value state round-trips through a checkpoint.
The failure mode this rule targets is silent drift: a later change
adds a data member, forgets the visitor, and restores start from a
half-loaded object — worse than a crash, because the witness only
catches members that affect serialized state downstream.

Rule: for every class C that defines a method named `checkpoint`,
every non-static data member of C must be *named* inside some
checkpoint method body of C — either as an identifier token (an
`ck.io(member_)` call or any other use) or as a word inside a string
literal (the `ck.transient("a_ b_ c_")` declaration for members that
are deliberately not serialized: host pointers, derived caches,
coroutine handles).

Members that must not be serialized still must be *declared*, so a
reviewer can see the decision and this rule can prove coverage.
False positives (e.g. a member consumed via a helper the rule cannot
see) can be waived per line with `// LINT-OK(serializer-coverage):
reason`.
"""

import re

RULE_ID = "serializer-coverage"

DOC = ("every non-static data member of a class defining a "
       "checkpoint() visitor must be serialized or declared "
       "ck.transient(...)")

_WORD = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _merge_classes(unit):
    """name -> {'members': [(path, Member)], 'methods':
    [(path, Method)]} merged across the unit's files (foo.hh +
    foo.cc), so out-of-line checkpoint definitions see the header's
    member list."""
    classes = {}

    def cls_entry(name):
        return classes.setdefault(name, {"members": [], "methods": []})

    for model in unit:
        for cls in model.classes:
            e = cls_entry(cls.name)
            e["members"].extend((model.path, m) for m in cls.members)
            e["methods"].extend((model.path, m) for m in cls.methods)
        for fn in model.functions:
            if fn.cls:
                cls_entry(fn.cls)["methods"].append((model.path, fn))
    return classes


def _covered_names(ckpt_methods):
    """Every identifier token in a checkpoint body, plus every
    identifier-shaped word inside its string literals (the
    transient("a_ b_") form)."""
    covered = set()
    for _path, m in ckpt_methods:
        for t in m.body:
            if t.kind == "id":
                covered.add(t.text)
            elif t.kind == "str":
                covered.update(_WORD.findall(t.text))
    return covered


def check(unit):
    findings = []
    for name, entry in _merge_classes(unit).items():
        ckpt_methods = [
            (path, m) for path, m in entry["methods"]
            if m.name.split("::")[-1] == "checkpoint"
        ]
        if not ckpt_methods:
            continue
        covered = _covered_names(ckpt_methods)
        for path, mem in entry["members"]:
            if any(t.kind == "id" and t.text == "static"
                   for t in mem.type_tokens):
                continue
            # `struct Foo;` nested forward declarations parse as a
            # member whose "type" is the class-key (plus the name
            # itself) — not data.
            rest = [t.text for t in mem.type_tokens
                    if t.text not in ("struct", "class", "enum")]
            if any(t.text in ("struct", "class", "enum")
                   for t in mem.type_tokens) and \
                    rest in ([], [mem.name]):
                continue
            if mem.name in covered:
                continue
            findings.append(
                (path, mem.line, RULE_ID,
                 "'%s::%s' is not serialized by checkpoint() nor "
                 "declared ck.transient(\"%s\"); a restored object "
                 "would silently keep its constructed value"
                 % (name, mem.name, mem.name)))
    return findings
