"""A1 `layer-dag`: the src/ layer architecture is a checked DAG.

The implicit architecture this repo grew —

    base → graph/sim → mem/cpu → minnow/worklist
         → galois/bsp/runtime → apps/harness

— existed only in reviewers' heads until now. Each layer may include
its own layer and anything *below* it; an include that points at a
higher layer couples a foundation to its clients (the next refactor
of the client breaks the foundation), and an include cycle between
files makes build order and ownership ambiguous.

The layer order and the directory→layer mapping live in
tools/lint/layers.toml, lowest layer first. Grandfathered backward
edges (e.g. minnow/ including runtime/machine.hh — the engine and
the machine are mutually coupled by the offload protocol today) are
reviewed [[allow]] entries there, each with a reason; a new backward
edge is a finding until it is either fixed or explicitly reviewed
into the allowlist. Findings land on the `#include` line.

File-level include cycles are always findings — there is no
legitimate cycle — and are reported once per cycle on its
lexicographically first file. Unresolved includes (system headers,
files outside the scan set) are skipped: the rule judges only edges
between files it can see, so partial scans stay quiet rather than
wrong.
"""

RULE_ID = "layer-dag"

DOC = ("includes must respect the layer DAG in tools/lint/"
       "layers.toml; backward includes and include cycles are "
       "findings")


def check_project(project):
    findings = []
    layers = project.layers
    if layers is None:
        return findings

    for e in project.include_edges:
        if not e.to_path:
            continue  # unresolved: outside the scan set
        from_layer, from_level = layers.layer_of(e.from_path)
        to_layer, to_level = layers.layer_of(e.to_path)
        if from_layer is None or to_layer is None:
            continue  # unlayered file (tools, tests without mapping)
        if to_level <= from_level:
            continue  # same layer or downward: fine
        reason = layers.allowed(e.from_path, e.to_path)
        if reason is not None:
            continue
        findings.append(
            (e.from_path, e.line, RULE_ID,
             "layer '%s' includes \"%s\" from higher layer '%s'; "
             "the DAG (tools/lint/layers.toml) only allows "
             "same-or-lower includes — invert the dependency or "
             "add a reviewed [[allow]] entry"
             % (from_layer, e.target, to_layer)))

    for cyc in project.include_cycles():
        head = cyc[0]
        # Anchor the finding on head's include of the next file in
        # the cycle.
        line = 1
        for e in project.include_edges:
            if e.from_path == head and e.to_path == cyc[1 % len(cyc)]:
                line = e.line
                break
        findings.append(
            (head, line, RULE_ID,
             "include cycle: %s; break the cycle (forward-declare, "
             "split the header, or move the shared piece down a "
             "layer)" % " -> ".join(cyc + [head])))
    return findings
