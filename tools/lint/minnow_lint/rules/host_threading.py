"""P1 `host-threading`: host concurrency lives in sim/parallel/.

The sharded-host design (DESIGN.md section 5j) gives the simulator
exactly one home for host threads and cross-thread state:
sim/parallel/ (ShardPool's worker threads, EpochBarrier, SpscChannel,
the task farm). Everything outside that directory must stay
single-threaded from the host's point of view, because byte-identical
replay is argued file by file — a stray std::thread or a mutex-guarded
shared structure elsewhere silently widens the audit surface:

  - std::thread / std::jthread / pthread_*: a second execution
    context outside the pool's fork-join discipline;
  - std::mutex / condition_variable and friends (and their lock
    wrappers): blocking cross-thread state with untracked ordering —
    sharded code exchanges data through epoch barriers and SPSC
    channels, whose drain order is canonical and testable;
  - std::atomic / std::atomic_flag: lock-free cross-thread state
    with the same problem in a harder-to-spot shape;
  - std::async / future / promise / semaphores / latches / barriers:
    thread creation or synchronization by another name.

Code that genuinely needs one of these outside sim/parallel/ (e.g.
the async-signal-safe spinlock in base/logging.cc, which cannot
depend on sim/) documents why with a LINT-OK(host-threading) at the
use site.
"""

RULE_ID = "host-threading"

DOC = ("bans std::thread/mutex/atomic and other host concurrency "
       "primitives outside sim/parallel/")

# Identifiers banned when std::-qualified. std::atomic_<T> aliases
# (atomic_bool, atomic_uint64_t, ...) are caught by prefix below.
_BANNED_STD = {
    "thread": "spawns a host thread",
    "jthread": "spawns a host thread",
    "mutex": "blocking cross-thread state",
    "timed_mutex": "blocking cross-thread state",
    "recursive_mutex": "blocking cross-thread state",
    "recursive_timed_mutex": "blocking cross-thread state",
    "shared_mutex": "blocking cross-thread state",
    "shared_timed_mutex": "blocking cross-thread state",
    "condition_variable": "blocking cross-thread signaling",
    "condition_variable_any": "blocking cross-thread signaling",
    "lock_guard": "locks a mutex",
    "unique_lock": "locks a mutex",
    "scoped_lock": "locks a mutex",
    "shared_lock": "locks a mutex",
    "call_once": "cross-thread one-shot state",
    "once_flag": "cross-thread one-shot state",
    "async": "spawns a host thread",
    "future": "cross-thread result passing",
    "shared_future": "cross-thread result passing",
    "promise": "cross-thread result passing",
    "packaged_task": "cross-thread result passing",
    "counting_semaphore": "cross-thread synchronization",
    "binary_semaphore": "cross-thread synchronization",
    "latch": "cross-thread synchronization",
    "barrier": "cross-thread synchronization",
    "stop_source": "host-thread cancellation state",
    "stop_token": "host-thread cancellation state",
}

_ATOMIC_PREFIX = "atomic"

_HOME = "sim/parallel/"


def _in_home(path):
    return _HOME in path.replace("\\", "/")


def _finding(model, tok, what):
    return (model.path, tok.line, RULE_ID,
            "%s (%s) outside %s; host concurrency lives in "
            "sim/parallel (pool + barriers + channels, DESIGN.md "
            "5j) — route through it or justify with a LINT-OK"
            % (what, _BANNED_STD.get(tok.text,
                                     "cross-thread shared state"),
               _HOME.rstrip("/")))


def check(unit):
    findings = []
    for model in unit:
        if _in_home(model.path):
            continue
        toks = model.tokens
        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            if t.text.startswith("pthread_"):
                findings.append(
                    (model.path, t.line, RULE_ID,
                     "%s() (raw pthreads) outside %s; host "
                     "concurrency lives in sim/parallel (pool + "
                     "barriers + channels, DESIGN.md 5j)"
                     % (t.text, _HOME.rstrip("/"))))
                continue
            # Only std::-qualified names: a project type that
            # happens to be called `barrier` or `future` is fine.
            if not (i >= 2 and toks[i - 1].kind == "punct" and
                    toks[i - 1].text == "::" and
                    toks[i - 2].kind == "id" and
                    toks[i - 2].text == "std"):
                continue
            if t.text in _BANNED_STD:
                findings.append(
                    _finding(model, t, "std::" + t.text))
            elif t.text.startswith(_ATOMIC_PREFIX):
                findings.append(
                    (model.path, t.line, RULE_ID,
                     "std::%s (lock-free cross-thread state) "
                     "outside %s; host concurrency lives in "
                     "sim/parallel (pool + barriers + channels, "
                     "DESIGN.md 5j) — route through it or justify "
                     "with a LINT-OK" % (t.text, _HOME.rstrip("/"))))
    return findings
