"""L2 `stats-lifetime`: external group registrations must be removed.

StatsRegistry formulas capture pointers into the registering
component (`[this] { return double(counter_); }`). When a component
registers a group into a registry it does NOT own and dies first,
every later dump (interval sample, panic snapshot, end-of-run JSON)
calls through dangling captures — the PR 2 "worklist" group bug.

Rule: if any method of class C calls `<recv>.group(...)` or
`<recv>.freshGroup(...)` where the receiver is not a StatsRegistry
data member of C itself (i.e. the registry is external — a
parameter, or reached through another object), then C must define a
destructor from which a `removeGroup(...)` call is reachable through
the project call graph (C's methods plus free functions, depth <= 6
— since the ProjectModel landed this follows helper chains of any
realistic depth, where the old rule stopped after one level and
flagged a removeGroup two helpers deep as missing;
tests/lint_fixtures/stats_deep_ok.hh pins that).

The conforming pattern is worklist/worklist.hh: attachStats() stores
the registry pointer, ~Worklist() calls removeGroup.
"""

from ..scan import receiver_chain, type_mentions

RULE_ID = "stats-lifetime"

DOC = ("StatsRegistry group registrations into an external registry "
       "need a removeGroup reachable from the destructor")

_REGISTER = {"group", "freshGroup"}


def _own_registry_members(entry):
    """Names of by-value StatsRegistry data members of the class."""
    own = set()
    for _path, m in entry["members"]:
        if type_mentions(m.type_tokens, {"StatsRegistry"}):
            # By-value only: a pointer/reference member means the
            # registry lives elsewhere.
            tix = [t.text for t in m.type_tokens
                   if t.kind == "punct" and t.text in ("*", "&")]
            if not tix:
                own.add(m.name)
    return own


def _registration_sites(entry):
    """[(path, line, receiver_chain)] for group()/freshGroup() calls
    with an explicit receiver in the class's methods."""
    sites = []
    for path, m in entry["methods"]:
        body = m.body
        for i, t in enumerate(body):
            if t.kind == "id" and t.text in _REGISTER and \
                    i + 1 < len(body) and body[i + 1].text == "(":
                chain = receiver_chain(body, i)
                if not chain:
                    continue  # bare call (e.g. inside StatsRegistry)
                sites.append((path, t.line, chain))
    return sites


def _removal_reachable(project, entry, cls_name):
    """Is a removeGroup() call reachable from ~cls_name through the
    project call graph (class methods + free functions)?"""
    dtor = None
    for _path, m in entry["methods"]:
        if m.name.split("::")[-1] == "~" + cls_name:
            dtor = m
            break
    if dtor is None:
        return False

    def body_has_remove(m):
        return any(t.kind == "id" and t.text == "removeGroup"
                   for t in m.body)

    if body_has_remove(dtor):
        return True
    dfi = project.func_of(dtor)
    if dfi is None:
        return False
    for key in project.reachable_from(dfi.key, max_depth=6,
                                      same_class=cls_name):
        if body_has_remove(project.functions[key].method):
            return True
    return False


def check_project(project):
    findings = []
    for name, entry in project.classes.items():
        sites = _registration_sites(entry)
        if not sites:
            continue
        own = _own_registry_members(entry)
        external = []
        for path, line, chain in sites:
            # Own registry: single-step receiver naming a by-value
            # StatsRegistry member (`stats.group("sim")` inside the
            # class that declares `StatsRegistry stats;`).
            if len(chain) == 1 and chain[0] in own:
                continue
            external.append((path, line, chain))
        if not external:
            continue
        if _removal_reachable(project, entry, name):
            continue
        for path, line, chain in external:
            findings.append(
                (path, line, RULE_ID,
                 "'%s' registers a stats group into an external "
                 "registry ('%s') but no removeGroup() is reachable "
                 "from ~%s; formulas capturing this object will "
                 "dangle when it dies before the registry (see "
                 "worklist.hh attachStats for the pattern)"
                 % (name, ".".join(chain), name)))
    return findings
