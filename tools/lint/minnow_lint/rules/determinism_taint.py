"""D3 `determinism-taint`: host entropy must not steer the sim.

D1 bans host-time/entropy *call sites* outside their sanctioned
homes, but a ban list cannot see a laundered value: a helper that
returns `hostNowNs()` looks clean at every use site. This rule
upgrades D1 to interprocedural dataflow over the project call graph
(DESIGN.md 5l): a function whose return value derives from a host
source — directly, or through up to three call layers
(ProjectModel.taint_closure) — taints every expression that calls
it, and tainted expressions may not reach the places where a host
value would steer simulated behavior:

  - arguments of `schedule*` / `scheduleCompact` (a host-dependent
    event time is nondeterminism at its root: the event order
    itself);
  - RNG seeding (`seed(...)`, `Rng(...)` / `Rng{...}`): the seeded
    stream silently re-keys every draw downstream;
  - stats scalars (members of `*Stats` aggregates and members with
    Stat-typed declarations): stats JSON is byte-diffed across runs;
  - checkpoint-serialized members (anything a `checkpoint()` body
    names outside `transient(...)` strings): a host value written
    there changes restored state run to run.

Taint propagates through simple local assignment (`auto t = f();`
then `t` is tainted for the rest of the body — linear, not
flow-sensitive) and through function returns up to depth 3; it does
NOT propagate through data members, containers, or out-parameters
(documented under-approximation, kept so every finding is
actionable). The sanctioned host-time consumers (hostprof's own
counters, the epoch barrier's wait accounting) are plain host-side
integers, not sim state, so they do not trip the sinks.
"""

from ..scan import match_paren, split_args, receiver_chain

RULE_ID = "determinism-taint"

DOC = ("host-derived values (hostNowNs & friends, through <=3 call "
       "layers) must not reach schedule*/stats/checkpoint/RNG-seed "
       "sinks")

# Value-producing host sources. The D1 side (bans on the call sites
# themselves) still applies; this rule tracks what their *values*
# touch, including through the hostNowNs() exemption.
_SOURCES = {
    "hostNowNs", "rand", "drand48", "lrand48", "random_device",
    "system_clock", "steady_clock", "high_resolution_clock",
    "getenv", "secure_getenv",
}

_STAT_TYPES = {
    "ScalarStat", "CounterStat", "FormulaStat", "HistogramStat",
    "StatHistogram",
}

_SEED_CALLS = {"seed", "Rng", "SplitMix64"}


def _stats_member_names(project):
    """Member names that count as stats scalars: declared with a
    Stat type, or members of a class whose name contains 'Stats'."""
    names = set()
    for cls_name, entry in project.classes.items():
        is_stats_cls = "Stats" in cls_name
        for _path, mem in entry["members"]:
            if is_stats_cls or any(
                    t.kind == "id" and t.text in _STAT_TYPES
                    for t in mem.type_tokens):
                names.add(mem.name)
    return names


def _serialized_members(project):
    """class name -> set of member names its checkpoint() bodies
    serialize (identifier uses, minus transient(...) strings)."""
    import re
    word = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
    out = {}
    for cls_name, entry in project.classes.items():
        ck = [m for _p, m in entry["methods"]
              if m.name.split("::")[-1] == "checkpoint"]
        if not ck:
            continue
        ids = set()
        transient = set()
        for m in ck:
            for i, t in enumerate(m.body):
                if t.kind == "id":
                    ids.add(t.text)
                elif t.kind == "str":
                    transient.update(word.findall(t.text))
        member_names = {mem.name for _p, mem in entry["members"]}
        out[cls_name] = (ids - transient) & member_names
    return out


def _expr_tainted(tokens, tainted_fns, tainted_locals):
    """Does this token run contain a call to a tainted function /
    source, or a use of a tainted local?"""
    n = len(tokens)
    for i, t in enumerate(tokens):
        if t.kind != "id":
            continue
        if t.text in tainted_locals:
            return t.text
        is_call = i + 1 < n and tokens[i + 1].kind == "punct" and \
            tokens[i + 1].text == "("
        if is_call and (t.text in _SOURCES or t.text in tainted_fns):
            return t.text + "()"
        if not is_call and t.text in ("system_clock", "steady_clock",
                                      "high_resolution_clock",
                                      "random_device"):
            return t.text  # type-ish sources used as ::now() etc.
    return None


def _local_taint(body, tainted_fns):
    """Linear pass: local names assigned from tainted expressions.
    Returns {name: line}."""
    tainted = {}
    n = len(body)
    i = 0
    while i < n:
        t = body[i]
        if t.kind == "id" and i + 1 < n and \
                body[i + 1].kind == "punct" and \
                body[i + 1].text == "=" and \
                (i + 2 < n and body[i + 2].text != "="):
            # statement RHS up to ';'
            j = i + 2
            while j < n:
                u = body[j]
                if u.kind == "punct":
                    if u.text == "(":
                        j = match_paren(body, j)
                        continue
                    if u.text == ";":
                        break
                j += 1
            rhs = body[i + 2:j]
            why = _expr_tainted(rhs, tainted_fns, tainted)
            if why:
                tainted[t.text] = t.line
            i = j
            continue
        i += 1
    return tainted


def check_project(project):
    findings = []
    closure = project.taint_closure(_SOURCES, max_depth=3)
    tainted_fns = {project.functions[k].name: d
                   for k, d in closure.items()}
    stats_names = _stats_member_names(project)
    serialized = _serialized_members(project)

    for fi in project.functions.values():
        body = fi.method.body
        # Fast reject: no source/tainted name appears at all.
        mentioned = {t.text for t in body if t.kind == "id"}
        if not (mentioned & (_SOURCES | set(tainted_fns))):
            continue
        tainted_locals = _local_taint(body, tainted_fns)
        ser = serialized.get(fi.cls, set())

        n = len(body)
        for i, t in enumerate(body):
            if t.kind != "id":
                continue
            nxt_open = i + 1 < n and body[i + 1].kind == "punct" and \
                body[i + 1].text in ("(", "{")
            # Sink 1: schedule*(...) arguments.
            if nxt_open and body[i + 1].text == "(" and \
                    t.text.startswith("schedule"):
                args, _close = split_args(body, i + 1)
                for arg in args:
                    why = _expr_tainted(arg, tainted_fns,
                                        tainted_locals)
                    if why:
                        findings.append(
                            (fi.path, t.line, RULE_ID,
                             "host-derived value (%s) flows into "
                             "'%s' in '%s'; a host-dependent event "
                             "time reorders the whole run — use "
                             "sim time (eq.now()) instead"
                             % (why, t.text, fi.qual)))
                        break
                continue
            # Sink 2: RNG seeding.
            if nxt_open and t.text in _SEED_CALLS:
                args, _close = split_args(body, i + 1)
                for arg in args:
                    why = _expr_tainted(arg, tainted_fns,
                                        tainted_locals)
                    if why:
                        findings.append(
                            (fi.path, t.line, RULE_ID,
                             "host-derived value (%s) seeds the "
                             "RNG via '%s' in '%s'; every draw "
                             "downstream becomes run-dependent — "
                             "seed from config/CLI only"
                             % (why, t.text, fi.qual)))
                        break
                continue
            # Sink 3+4: assignment into stats scalars or
            # checkpoint-serialized members.
            if i + 1 < n and body[i + 1].kind == "punct" and \
                    body[i + 1].text in ("=", "+=", "-="):
                target = t.text
                is_stats = target in stats_names and (
                    receiver_chain(body, i) or fi.cls)
                is_ser = fi.cls and target in ser
                if not (is_stats or is_ser):
                    continue
                j = i + 2
                while j < n:
                    u = body[j]
                    if u.kind == "punct":
                        if u.text == "(":
                            j = match_paren(body, j)
                            continue
                        if u.text == ";":
                            break
                    j += 1
                why = _expr_tainted(body[i + 2:j], tainted_fns,
                                    tainted_locals)
                if why:
                    what = ("stats scalar" if is_stats
                            else "checkpoint-serialized member")
                    findings.append(
                        (fi.path, t.line, RULE_ID,
                         "host-derived value (%s) is written into "
                         "%s '%s' in '%s'; exported/restored state "
                         "must not depend on host timing"
                         % (why, what, target, fi.qual)))
    return findings
