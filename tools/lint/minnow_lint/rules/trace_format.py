"""T1 `trace-format`: format strings must match argument counts.

trace::print and the logging helpers are printf-family varargs. A
spec/argument mismatch compiles silently when the call is forwarded
through a macro layer without [[gnu::format]], reads garbage stack
at runtime, and — because DPRINTF output feeds the trace JSON the
determinism checks diff — turns a cosmetic bug into spurious
nondeterminism. The shipped trace.hh carries [[gnu::format]] today;
the rule keeps the property when calls are wrapped or the attribute
is dropped (MSVC builds, refactors), and covers panic/fatal/warn,
whose error paths are rarely executed under test.

Checked call sites (format-string argument index in parentheses,
0-based): DPRINTF(2), panic(0), fatal(0), warn(0), inform(0),
panic_if(1), fatal_if(1), warn_if(1).

Only calls whose format argument is entirely string literals
(including adjacent-literal concatenation) are checked; a runtime
format expression is skipped, not guessed at.
"""

from ..scan import split_args, string_value

RULE_ID = "trace-format"

DOC = ("DPRINTF/panic/fatal/warn format specifiers must match the "
       "argument count")

# macro name -> index of the format-string argument
_FMT_CALLS = {
    "DPRINTF": 2,
    "panic": 0,
    "fatal": 0,
    "warn": 0,
    "inform": 0,
    "panic_if": 1,
    "fatal_if": 1,
    "warn_if": 1,
}

_CONVERSIONS = "diouxXeEfFgGaAcspn"
_LENGTHS = "hljztL"


def count_specs(fmt):
    """Number of varargs a printf format string consumes, or None if
    it contains a spec we don't understand (skip, don't guess)."""
    count = 0
    i = 0
    n = len(fmt)
    while i < n:
        c = fmt[i]
        if c != "%":
            i += 1
            continue
        i += 1
        if i < n and fmt[i] == "%":
            i += 1
            continue
        # flags
        while i < n and fmt[i] in "-+ #0'":
            i += 1
        # width
        if i < n and fmt[i] == "*":
            count += 1
            i += 1
        else:
            while i < n and fmt[i].isdigit():
                i += 1
        # precision
        if i < n and fmt[i] == ".":
            i += 1
            if i < n and fmt[i] == "*":
                count += 1
                i += 1
            else:
                while i < n and fmt[i].isdigit():
                    i += 1
        # length modifiers
        while i < n and fmt[i] in _LENGTHS:
            i += 1
        if i >= n or fmt[i] not in _CONVERSIONS:
            return None
        count += 1
        i += 1
    return count


def _literal_format(arg_tokens):
    """If the argument is only string literals (adjacent
    concatenation), return the joined contents; else None."""
    if not arg_tokens:
        return None
    if all(t.kind == "str" for t in arg_tokens):
        return "".join(string_value(t) for t in arg_tokens)
    return None


def check(unit):
    findings = []
    for model in unit:
        toks = model.tokens
        for i, t in enumerate(toks):
            if t.kind != "id" or t.text not in _FMT_CALLS:
                continue
            if i + 1 >= len(toks) or toks[i + 1].text != "(":
                continue
            # Skip the macro definitions themselves.
            if i > 0 and toks[i - 1].kind == "id" and \
                    toks[i - 1].text == "define":
                continue
            fmt_ix = _FMT_CALLS[t.text]
            args, _close = split_args(toks, i + 1)
            if len(args) <= fmt_ix:
                continue  # malformed or macro-forwarded; skip
            fmt = _literal_format(args[fmt_ix])
            if fmt is None:
                continue
            specs = count_specs(fmt)
            if specs is None:
                continue
            supplied = len(args) - fmt_ix - 1
            if specs != supplied:
                findings.append(
                    (model.path, t.line, RULE_ID,
                     "%s format string has %d conversion%s but %d "
                     "argument%s %s supplied; mismatched varargs "
                     "read garbage and poison the trace JSON"
                     % (t.text, specs, "" if specs == 1 else "s",
                        supplied, "" if supplied == 1 else "s",
                        "is" if supplied == 1 else "are")))
    return findings
