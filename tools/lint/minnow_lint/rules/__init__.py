"""Rule registry. Two kinds of rule module:

  - per-unit rules expose check(unit) -> [(path, line, rule, msg)],
    where a `unit` is a list of FileModel objects sharing a path
    stem (foo.hh + foo.cc), so rules relating a class body to its
    out-of-line member definitions see both sides;

  - whole-program rules expose check_project(project) and run once
    per scan against the ProjectModel (call graph, include graph,
    layer DAG — see project.py and DESIGN.md 5l).

A module may expose either or both; every module exposes RULE_ID
and DOC.
"""

from . import determinism
from . import unordered_export
from . import coroutine_order
from . import stats_lifetime
from . import daemon_accounting
from . import trace_format
from . import serializer_coverage
from . import host_threading
from . import coro_suspend
from . import determinism_taint
from . import layer_dag

ALL_RULES = [
    determinism,
    unordered_export,
    coroutine_order,
    stats_lifetime,
    daemon_accounting,
    trace_format,
    serializer_coverage,
    host_threading,
    coro_suspend,
    determinism_taint,
    layer_dag,
]

UNIT_RULES = [r for r in ALL_RULES if hasattr(r, "check")]
PROJECT_RULES = [r for r in ALL_RULES if hasattr(r, "check_project")]

RULE_IDS = [r.RULE_ID for r in ALL_RULES]

# Findings the suppression machinery itself can raise; LINT-OK may
# name any of these too (suppressing a meta finding is never useful,
# but naming them must not be reported as an unknown rule).
META_RULE_IDS = ["stale-suppression", "bad-suppression"]
