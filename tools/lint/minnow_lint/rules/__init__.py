"""Rule registry. Each rule module exposes RULE_ID, DOC, and
check(unit) -> [(path, line, rule, message)].

A `unit` is a list of FileModel objects sharing a path stem (foo.hh
+ foo.cc), so rules that relate a class body to its out-of-line
member definitions see both sides.
"""

from . import determinism
from . import unordered_export
from . import coroutine_order
from . import stats_lifetime
from . import daemon_accounting
from . import trace_format
from . import serializer_coverage
from . import host_threading

ALL_RULES = [
    determinism,
    unordered_export,
    coroutine_order,
    stats_lifetime,
    daemon_accounting,
    trace_format,
    serializer_coverage,
    host_threading,
]

RULE_IDS = [r.RULE_ID for r in ALL_RULES]

# Findings the suppression machinery itself can raise; LINT-OK may
# name any of these too (suppressing a meta finding is never useful,
# but naming them must not be reported as an unknown rule).
META_RULE_IDS = ["stale-suppression", "bad-suppression"]
