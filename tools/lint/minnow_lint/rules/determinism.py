"""D1 `determinism`: ban ambient-entropy and host-time sources.

The simulator's contract is byte-identical runs per seed
(scripts/check_fault_determinism.py, check_trace_json.py). Anything
that reads the host environment breaks it:

  - rand()/srand()/random()/drand48(): process-global hidden state;
  - std::random_device: hardware entropy;
  - system_clock/steady_clock/high_resolution_clock: host wall time;
  - getenv()/setenv(): run behavior keyed on ambient environment;
  - std::map/std::set keyed on a POINTER type: iteration order is
    allocation-address order, which varies run to run (ASLR, heap
    layout) — the classic nondeterminism landmine in simulators.

Seeded randomness goes through base/rng.hh; host time goes through
the single allowlisted hostNowNs() in base/host_clock.cc (the
--host-profile self-profiler measures host speed by design and is
marked there once, not per use site).
"""

from ..scan import match_paren

RULE_ID = "determinism"

DOC = ("bans rand()/random_device/wall-clock/getenv and "
       "pointer-keyed ordered containers in simulator code")

_BANNED_IDS = {
    "rand": "rand() draws from hidden process-global state",
    "srand": "srand() mutates hidden process-global state",
    "drand48": "drand48() draws from hidden process-global state",
    "lrand48": "lrand48() draws from hidden process-global state",
    "random_device": "std::random_device reads hardware entropy",
    "system_clock": "system_clock reads the host wall clock",
    "steady_clock": "steady_clock reads the host wall clock",
    "high_resolution_clock":
        "high_resolution_clock reads the host wall clock",
    "getenv": "getenv() keys behavior on the ambient environment",
    "secure_getenv":
        "secure_getenv() keys behavior on the ambient environment",
    "setenv": "setenv() mutates the ambient environment",
    "putenv": "putenv() mutates the ambient environment",
}

_ORDERED = {"map", "set", "multimap", "multiset"}


def _first_template_arg_is_pointer(tokens, lt):
    """tokens[lt] is '<' after map/set; is the first template
    argument a pointer type?"""
    depth = 0
    i = lt
    last = None
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind == "punct":
            if t.text == "<":
                depth += 1
            elif t.text == ">":
                depth -= 1
                if depth == 0:
                    break
            elif t.text == "," and depth == 1:
                break
            elif t.text == "(":
                i = match_paren(tokens, i)
                continue
            elif t.text in (";", "{", "}"):
                return False  # comparison, not a template
        if depth >= 1:
            last = t
        i += 1
    return last is not None and last.kind == "punct" and \
        last.text == "*"


def check(unit):
    findings = []
    for model in unit:
        toks = model.tokens
        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            if t.text in _BANNED_IDS:
                findings.append(
                    (model.path, t.line, RULE_ID,
                     "%s; route host time through "
                     "base/host_clock.hh:hostNowNs() and randomness "
                     "through base/rng.hh" % _BANNED_IDS[t.text]))
                continue
            if t.text in _ORDERED and i + 1 < len(toks) and \
                    toks[i + 1].kind == "punct" and \
                    toks[i + 1].text == "<":
                # Require a std:: qualifier so a project type named
                # `set` can't false-positive.
                if not (i >= 2 and toks[i - 1].text == "::" and
                        toks[i - 2].text == "std"):
                    continue
                if _first_template_arg_is_pointer(toks, i + 1):
                    findings.append(
                        (model.path, t.line, RULE_ID,
                         "std::%s keyed on a pointer iterates in "
                         "allocation-address order, which differs "
                         "run to run; key on a stable id instead"
                         % t.text))
    return findings
