"""E1 `daemon-accounting`: self-rearming events must be daemons.

The EventQueue drains when its last event pops. A periodic event
that re-arms itself ("daemon" — the stats sampler, the timeline
sampler, the watchdog) would keep the queue non-empty forever, so
the queue exposes a daemon-accounting protocol (event_queue.hh):

    eq.daemonScheduled();          // at every arm site
    eq.schedule(when, &C::handler, arg);
    ...
    C::handler(void *arg) {
        eq->daemonFired();         // first thing in the handler
        if (!eq->quiescent()) {    // re-arm only while real work
            eq->daemonScheduled();  //   remains
            eq->schedule(...);
        }
    }

Guarding the re-arm with `!eq.empty()` instead is the PR 4
mutual-keepalive hang: two daemons each see the other's pending
event and re-arm forever.

Detection (whole-program since the ProjectModel landed): a handler
H is a *daemon* when some method schedules the member-function
pointer `&C::H` and the re-arm of `&C::H` is reachable from H
through the project call graph (restricted to C's methods plus free
functions, depth <= 6 — the watchdog's checkEvent/check split and
any deeper helper chains are followed). For a daemon chain the rule
requires: daemonScheduled in every body that arms `&C::H`,
daemonFired reachable from H, a quiescent() call guarding each
re-arm body, and no empty()-based guard on an event-queue receiver
anywhere in the chain. The pre-ProjectModel version followed exactly
one handler→helper level; a re-arm two calls deep was a false
negative (tests/lint_fixtures/daemon_deep_bad.cc pins the fix).
"""

from ..scan import receiver_chain, split_args

RULE_ID = "daemon-accounting"

DOC = ("self-rearming EventQueue events must use daemonScheduled/"
       "daemonFired/quiescent, never an empty() guard")


def _handler_schedules(body):
    """[(line, cls_or_None, handler_name)] for schedule() calls in
    `body` passing a `&C::H` (or `&H`) function argument."""
    out = []
    for i, t in enumerate(body):
        if not (t.kind == "id" and t.text == "schedule" and
                i + 1 < len(body) and body[i + 1].text == "("):
            continue
        args, _close = split_args(body, i + 1)
        for arg in args:
            if not arg or not (arg[0].kind == "punct" and
                               arg[0].text == "&"):
                continue
            if len(arg) >= 4 and arg[1].kind == "id" and \
                    arg[2].kind == "punct" and arg[2].text == "::" \
                    and arg[3].kind == "id":
                out.append((t.line, arg[1].text, arg[3].text))
            elif len(arg) >= 2 and arg[1].kind == "id" and (
                    len(arg) == 2 or arg[2].kind != "punct" or
                    arg[2].text != "::"):
                out.append((t.line, None, arg[1].text))
    return out


def _has_id_call(body, name):
    return any(t.kind == "id" and t.text == name and
               i + 1 < len(body) and body[i + 1].text == "("
               for i, t in enumerate(body))


def _eqish_empty_calls(body):
    """[(line, recv)] for `X.empty()`/`X->empty()` where the
    receiver looks like an event queue."""
    out = []
    for i, t in enumerate(body):
        if not (t.kind == "id" and t.text == "empty" and
                i + 1 < len(body) and body[i + 1].text == "("):
            continue
        chain = receiver_chain(body, i)
        if not chain:
            continue
        tail = chain[-1].lower()
        if "eq" in tail or "queue" in tail or "events" in tail:
            out.append((t.line, ".".join(chain)))
    return out


def check_project(project):
    findings = []
    for cls_name, entry in project.classes.items():
        by_base = {}
        arm_sites = {}  # handler -> [(path, line, Method)]
        for path, m in entry["methods"]:
            base = m.name.split("::")[-1]
            by_base.setdefault(base, (path, m))
            for line, hcls, hname in _handler_schedules(m.body):
                if hcls is not None and hcls != cls_name:
                    continue
                arm_sites.setdefault(hname, []).append(
                    (path, line, m))

        for hname, sites in arm_sites.items():
            if hname not in by_base:
                continue
            hpath, handler = by_base[hname]
            hfi = project.func_of(handler)
            # The call chain below the handler, through the project
            # call graph: C's own methods plus free functions, so a
            # re-arm or daemonFired buried N helpers deep is seen.
            chain = {}
            if hfi is not None:
                for k in project.reachable_from(
                        hfi.key, max_depth=6, same_class=cls_name):
                    cf = project.functions[k]
                    chain[id(cf.method)] = (cf.path, cf.method)
            chain.setdefault(id(handler), (hpath, handler))
            rearm = any(
                any(h == hname for _l, _c, h in
                    _handler_schedules(m.body))
                for _p, m in chain.values())
            if not rearm:
                continue  # one-shot event, daemon rules don't apply

            # 1. Every arm site's body must account the daemon.
            for path, line, m in sites:
                if not _has_id_call(m.body, "daemonScheduled"):
                    findings.append(
                        (path, line, RULE_ID,
                         "'%s' is a self-rearming event but this "
                         "schedule of &%s::%s has no daemonScheduled"
                         "() in the same function; the queue will "
                         "either never drain or drain early"
                         % (hname, cls_name, hname)))
            # 2. daemonFired must be reachable from the handler.
            if not any(_has_id_call(m.body, "daemonFired")
                       for _p, m in chain.values()):
                findings.append(
                    (hpath, handler.line, RULE_ID,
                     "daemon handler '%s::%s' never reaches "
                     "daemonFired(); the queue's daemon count "
                     "stays high and run() exits early"
                     % (cls_name, hname)))
            # 3. The re-arm must be quiescent()-guarded in the body
            # that performs it. Only methods reachable from the
            # handler count as re-arm sites; a standalone arm() that
            # only the owner calls is the initial arm and may
            # schedule unconditionally.
            for p, m in chain.values():
                rearms_here = any(
                    h == hname for _l, _c, h in
                    _handler_schedules(m.body))
                if rearms_here and \
                        not _has_id_call(m.body, "quiescent"):
                    findings.append(
                        (p, m.line, RULE_ID,
                         "re-arm of daemon '%s::%s' is not guarded "
                         "by quiescent(); unconditional re-arm "
                         "keeps the queue alive forever"
                         % (cls_name, hname)))
            # 4. empty()-based guards anywhere in the chain.
            bodies = [(p, m) for p, m in chain.values()]
            bodies += [(p, m) for p, _l, m in sites]
            seen = set()
            for p, m in bodies:
                if id(m) in seen:
                    continue
                seen.add(id(m))
                for line, recv in _eqish_empty_calls(m.body):
                    findings.append(
                        (p, line, RULE_ID,
                         "daemon logic for '%s::%s' tests "
                         "'%s.empty()'; with other daemons armed "
                         "the queue is never empty (mutual "
                         "keepalive) — use quiescent()"
                         % (cls_name, hname, recv)))
    return findings
