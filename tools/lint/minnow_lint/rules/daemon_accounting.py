"""E1 `daemon-accounting`: self-rearming events must be daemons.

The EventQueue drains when its last event pops. A periodic event
that re-arms itself ("daemon" — the stats sampler, the timeline
sampler, the watchdog) would keep the queue non-empty forever, so
the queue exposes a daemon-accounting protocol (event_queue.hh):

    eq.daemonScheduled();          // at every arm site
    eq.schedule(when, &C::handler, arg);
    ...
    C::handler(void *arg) {
        eq->daemonFired();         // first thing in the handler
        if (!eq->quiescent()) {    // re-arm only while real work
            eq->daemonScheduled();  //   remains
            eq->schedule(...);
        }
    }

Guarding the re-arm with `!eq.empty()` instead is the PR 4
mutual-keepalive hang: two daemons each see the other's pending
event and re-arm forever.

Detection: a handler H is a *daemon* when some method schedules the
member-function pointer `&C::H` and the re-arm of `&C::H` is
reachable from H itself (in H's body, or in a method H calls — the
watchdog splits checkEvent/check that way). For a daemon chain the
rule requires: daemonScheduled in every body that arms `&C::H`,
daemonFired in H, a quiescent() call guarding the re-arm body, and
no empty()-based guard on an event-queue receiver anywhere in the
chain.
"""

from ..scan import receiver_chain, split_args

RULE_ID = "daemon-accounting"

DOC = ("self-rearming EventQueue events must use daemonScheduled/"
       "daemonFired/quiescent, never an empty() guard")


def _merge_methods(unit):
    """class name -> [(path, Method)] across the unit (inline
    methods plus out-of-line definitions tagged with cls)."""
    classes = {}
    for model in unit:
        for cls in model.classes:
            for m in cls.methods:
                classes.setdefault(cls.name, []).append(
                    (model.path, m))
        for fn in model.functions:
            if fn.cls:
                classes.setdefault(fn.cls, []).append(
                    (model.path, fn))
    return classes


def _handler_schedules(body):
    """[(line, cls_or_None, handler_name)] for schedule() calls in
    `body` passing a `&C::H` (or `&H`) function argument."""
    out = []
    for i, t in enumerate(body):
        if not (t.kind == "id" and t.text == "schedule" and
                i + 1 < len(body) and body[i + 1].text == "("):
            continue
        args, _close = split_args(body, i + 1)
        for arg in args:
            if not arg or not (arg[0].kind == "punct" and
                               arg[0].text == "&"):
                continue
            if len(arg) >= 4 and arg[1].kind == "id" and \
                    arg[2].kind == "punct" and arg[2].text == "::" \
                    and arg[3].kind == "id":
                out.append((t.line, arg[1].text, arg[3].text))
            elif len(arg) >= 2 and arg[1].kind == "id" and (
                    len(arg) == 2 or arg[2].kind != "punct" or
                    arg[2].text != "::"):
                out.append((t.line, None, arg[1].text))
    return out


def _has_id_call(body, name):
    return any(t.kind == "id" and t.text == name and
               i + 1 < len(body) and body[i + 1].text == "("
               for i, t in enumerate(body))


def _eqish_empty_calls(body):
    """[(line, recv)] for `X.empty()`/`X->empty()` where the
    receiver looks like an event queue."""
    out = []
    for i, t in enumerate(body):
        if not (t.kind == "id" and t.text == "empty" and
                i + 1 < len(body) and body[i + 1].text == "("):
            continue
        chain = receiver_chain(body, i)
        if not chain:
            continue
        tail = chain[-1].lower()
        if "eq" in tail or "queue" in tail or "events" in tail:
            out.append((t.line, ".".join(chain)))
    return out


def check(unit):
    findings = []
    classes = _merge_methods(unit)
    for cls_name, methods in classes.items():
        by_base = {}
        arm_sites = {}  # handler -> [(path, line, Method)]
        for path, m in methods:
            base = m.name.split("::")[-1]
            by_base.setdefault(base, (path, m))
            for line, hcls, hname in _handler_schedules(m.body):
                if hcls is not None and hcls != cls_name:
                    continue
                arm_sites.setdefault(hname, []).append(
                    (path, line, m))

        for hname, sites in arm_sites.items():
            if hname not in by_base:
                continue
            hpath, handler = by_base[hname]
            # A daemon: the re-arm of &C::hname is reachable from the
            # handler — in its own body, or in a method its body
            # calls (the watchdog checkEvent -> check split).
            chain = {id(handler): (hpath, handler)}
            for i, t in enumerate(handler.body):
                if t.kind == "id" and i + 1 < len(handler.body) and \
                        handler.body[i + 1].text == "(" and \
                        t.text in by_base:
                    cp, cm = by_base[t.text]
                    chain[id(cm)] = (cp, cm)
            rearm = any(
                any(h == hname for _l, _c, h in
                    _handler_schedules(m.body))
                for _p, m in chain.values())
            if not rearm:
                continue  # one-shot event, daemon rules don't apply

            # 1. Every arm site's body must account the daemon.
            for path, line, m in sites:
                if not _has_id_call(m.body, "daemonScheduled"):
                    findings.append(
                        (path, line, RULE_ID,
                         "'%s' is a self-rearming event but this "
                         "schedule of &%s::%s has no daemonScheduled"
                         "() in the same function; the queue will "
                         "either never drain or drain early"
                         % (hname, cls_name, hname)))
            # 2. Handler must fire the accounting first.
            if not _has_id_call(handler.body, "daemonFired"):
                findings.append(
                    (hpath, handler.line, RULE_ID,
                     "daemon handler '%s::%s' never calls "
                     "daemonFired(); the queue's daemon count "
                     "stays high and run() exits early"
                     % (cls_name, hname)))
            # 3. The re-arm must be quiescent()-guarded. Only
            # methods reachable from the handler count as re-arm
            # sites; a standalone arm() that only the owner calls is
            # the initial arm and may schedule unconditionally.
            for p, m in chain.values():
                rearms_here = any(
                    h == hname for _l, _c, h in
                    _handler_schedules(m.body))
                if rearms_here and \
                        not _has_id_call(m.body, "quiescent"):
                    findings.append(
                        (p, m.line, RULE_ID,
                         "re-arm of daemon '%s::%s' is not guarded "
                         "by quiescent(); unconditional re-arm "
                         "keeps the queue alive forever"
                         % (cls_name, hname)))
            # 4. empty()-based guards anywhere in the chain.
            bodies = [(p, m) for p, m in chain.values()]
            bodies += [(p, m) for p, _l, m in sites]
            seen = set()
            for p, m in bodies:
                if id(m) in seen:
                    continue
                seen.add(id(m))
                for line, recv in _eqish_empty_calls(m.body):
                    findings.append(
                        (p, line, RULE_ID,
                         "daemon logic for '%s::%s' tests "
                         "'%s.empty()'; with other daemons armed "
                         "the queue is never empty (mutual "
                         "keepalive) — use quiescent()"
                         % (cls_name, hname, recv)))
    return findings
