"""D2 `unordered-export`: no unordered iteration in export paths.

Stats JSON, timeline export, and diagnostic dumps are diffed
byte-for-byte across runs (check_stats_json.py, check_trace_json.py,
check_fault_determinism.py). Iterating a std::unordered_map/set while
producing them leaks hash-table order — which is stable for a fixed
libstdc++ *today* but is salted or layout-dependent on other
standard libraries and changes with load factor — into those
artifacts.

Operational definition (documented in DESIGN.md 5g): inside any
function whose name marks it as an export path (it contains "json",
"dump", "export", "diag", "flatten", or "summary", or is named
writeFile/report/recordSample/toString), iterating a variable whose
declared type is an unordered container is a finding unless the
same function also calls std::sort/stable_sort — the canonical
conforming shape collects the keys and sorts them before emitting,
and a token-level pass cannot prove which container the sort fixed,
so any sort in the function is taken as the author handling
ordering — or the loop carries `// LINT-OK(unordered-export):
reason`.
"""

import re

from ..scan import type_mentions

RULE_ID = "unordered-export"

DOC = ("flags iteration over unordered containers inside JSON/dump/"
       "export functions")

_EXPORT_NAME = re.compile(
    r"json|dump|export|diag|flatten|summary", re.IGNORECASE)
_EXPORT_EXACT = {"writeFile", "report", "recordSample", "toString"}

_UNORDERED = {
    "unordered_map", "unordered_set",
    "unordered_multimap", "unordered_multiset",
}


def _is_export_function(name):
    base = name.split("::")[-1]
    return bool(_EXPORT_NAME.search(base)) or base in _EXPORT_EXACT


def _unordered_names(unit):
    """Map variable name -> declaration line for every member or
    local whose type mentions an unordered container, plus local
    declarations found by direct scan of function bodies."""
    names = {}
    for model in unit:
        for cls in model.classes:
            for m in cls.members:
                if type_mentions(m.type_tokens, _UNORDERED):
                    names[m.name] = m.line
        # Local declarations: `unordered_map<...> name` — find the
        # identifier following the closing '>' of the template args.
        for fn in _iter_functions(model):
            toks = fn.body
            for i, t in enumerate(toks):
                if t.kind == "id" and t.text in _UNORDERED and \
                        i + 1 < len(toks) and \
                        toks[i + 1].text == "<":
                    j = i + 1
                    depth = 0
                    while j < len(toks):
                        if toks[j].kind == "punct":
                            if toks[j].text == "<":
                                depth += 1
                            elif toks[j].text == ">":
                                depth -= 1
                                if depth == 0:
                                    break
                        j += 1
                    k = j + 1
                    # Skip refs and cv-qualifiers.
                    while k < len(toks) and (
                            toks[k].kind == "punct" and
                            toks[k].text in ("&", "*") or
                            toks[k].kind == "id" and
                            toks[k].text == "const"):
                        k += 1
                    if k < len(toks) and toks[k].kind == "id":
                        names[toks[k].text] = toks[k].line
    return names


def _iter_functions(model):
    for fn in model.functions:
        yield fn
    for cls in model.classes:
        for fn in cls.methods:
            yield fn


def _range_for_exprs(toks):
    """Yield (line, expr_tokens) for every range-for in the body."""
    i = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == "id" and t.text == "for" and i + 1 < n and \
                toks[i + 1].text == "(":
            depth = 0
            colon = None
            j = i + 1
            while j < n:
                u = toks[j]
                if u.kind == "punct":
                    if u.text == "(":
                        depth += 1
                    elif u.text == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    elif u.text == ":" and depth == 1 and \
                            colon is None:
                        colon = j
                j += 1
            if colon is not None:
                yield toks[i].line, toks[colon + 1:j]
            i = j
            continue
        i += 1


def check(unit):
    findings = []
    unordered = _unordered_names(unit)
    if not unordered:
        return findings
    for model in unit:
        for fn in _iter_functions(model):
            if not _is_export_function(fn.name):
                continue
            body = fn.body
            if _has_sort_call(body):
                continue
            # Range-for over an unordered variable.
            for line, expr in _range_for_exprs(body):
                for t in expr:
                    if t.kind == "id" and t.text in unordered:
                        findings.append(
                            (model.path, line, RULE_ID,
                             "export function '%s' iterates "
                             "unordered container '%s' (declared "
                             "line %d); sort the keys first or "
                             "explain with LINT-OK(unordered-"
                             "export)" % (fn.name, t.text,
                                          unordered[t.text])))
                        break
            # Iterator-style loops: name.begin() / name->begin().
            for i, t in enumerate(body):
                if t.kind == "id" and t.text == "begin" and i >= 2 \
                        and body[i - 1].kind == "punct" and \
                        body[i - 1].text in (".", "->") and \
                        body[i - 2].kind == "id" and \
                        body[i - 2].text in unordered:
                    findings.append(
                        (model.path, t.line, RULE_ID,
                         "export function '%s' walks unordered "
                         "container '%s' via iterators; sort the "
                         "keys first or explain with "
                         "LINT-OK(unordered-export)"
                         % (fn.name, body[i - 2].text)))
    return findings


def _has_sort_call(body):
    """Does this body call sort/stable_sort? Evidence the author
    fixed an emission order (see the module docstring for why this
    is function-granular)."""
    return any(t.kind == "id" and t.text in ("sort", "stable_sort")
               and i + 1 < len(body) and body[i + 1].text == "("
               for i, t in enumerate(body))
