"""L1 `coroutine-order`: bookkeeping before coroutine containers.

The PR 4 use-after-free class: a class owns suspended coroutines in
a container (std::vector<CoTask<void>> threadlets_). Destroying a
suspended coroutine runs the destructors of its locals — RAII spans
(TlSpan), scope guards — which touch the owner's timeline-lane and
stat bookkeeping. C++ destroys members in reverse declaration order,
so any bookkeeping member declared *after* the coroutine container
is already dead when those destructors run.

Rule: in a class that declares an *owning* coroutine container (a
member whose type mentions both a container and CoTask), every
member whose type mentions timeline/stat bookkeeping (TrackId, the
timeline namespace, HistogramStat, StatHistogram, StatsGroup,
ScalarStat, CounterStat, FormulaStat) must be declared before the
first such container.

Containers of bare std::coroutine_handle<> are deliberately exempt:
handles are non-owning, so destroying the container destroys no
coroutine and runs no RAII locals — only CoTask (whose destructor
calls handle.destroy()) triggers the hazard.
"""

from ..scan import type_mentions

RULE_ID = "coroutine-order"

DOC = ("timeline/stat bookkeeping members must be declared before "
       "coroutine containers (reverse-destruction UAF)")

_CONTAINERS = {"vector", "deque", "list", "array", "RingQueue"}
_CORO = {"CoTask"}
_BOOKKEEPING = {
    "TrackId", "timeline", "HistogramStat", "StatHistogram",
    "StatsGroup", "ScalarStat", "CounterStat", "FormulaStat",
}


def _is_coro_container(m):
    return type_mentions(m.type_tokens, _CONTAINERS) and \
        type_mentions(m.type_tokens, _CORO)


def check(unit):
    findings = []
    for model in unit:
        for cls in model.classes:
            first_coro = None
            for m in cls.members:
                if _is_coro_container(m):
                    first_coro = m
                    break
            if first_coro is None:
                continue
            for m in cls.members:
                if m.line <= first_coro.line or m is first_coro:
                    continue
                if _is_coro_container(m):
                    continue
                if type_mentions(m.type_tokens, _BOOKKEEPING):
                    findings.append(
                        (model.path, m.line, RULE_ID,
                         "member '%s::%s' is timeline/stat "
                         "bookkeeping but is declared after "
                         "coroutine container '%s' (line %d); "
                         "suspended-coroutine destructors run RAII "
                         "spans that touch it after it is "
                         "destroyed — move it above the container"
                         % (cls.name, m.name, first_coro.name,
                            first_coro.line)))
    return findings
