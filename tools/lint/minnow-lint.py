#!/usr/bin/env python3
"""Entry-point wrapper so the analyzer runs without installation:

    python3 tools/lint/minnow-lint.py [--root DIR] [paths...]
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from minnow_lint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
