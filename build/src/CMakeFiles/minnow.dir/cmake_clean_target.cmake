file(REMOVE_RECURSE
  "libminnow.a"
)
