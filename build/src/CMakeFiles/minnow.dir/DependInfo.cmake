
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/bc.cc" "src/CMakeFiles/minnow.dir/apps/bc.cc.o" "gcc" "src/CMakeFiles/minnow.dir/apps/bc.cc.o.d"
  "/root/repo/src/apps/cc.cc" "src/CMakeFiles/minnow.dir/apps/cc.cc.o" "gcc" "src/CMakeFiles/minnow.dir/apps/cc.cc.o.d"
  "/root/repo/src/apps/kcore.cc" "src/CMakeFiles/minnow.dir/apps/kcore.cc.o" "gcc" "src/CMakeFiles/minnow.dir/apps/kcore.cc.o.d"
  "/root/repo/src/apps/mis.cc" "src/CMakeFiles/minnow.dir/apps/mis.cc.o" "gcc" "src/CMakeFiles/minnow.dir/apps/mis.cc.o.d"
  "/root/repo/src/apps/pr.cc" "src/CMakeFiles/minnow.dir/apps/pr.cc.o" "gcc" "src/CMakeFiles/minnow.dir/apps/pr.cc.o.d"
  "/root/repo/src/apps/sssp.cc" "src/CMakeFiles/minnow.dir/apps/sssp.cc.o" "gcc" "src/CMakeFiles/minnow.dir/apps/sssp.cc.o.d"
  "/root/repo/src/apps/tc.cc" "src/CMakeFiles/minnow.dir/apps/tc.cc.o" "gcc" "src/CMakeFiles/minnow.dir/apps/tc.cc.o.d"
  "/root/repo/src/base/logging.cc" "src/CMakeFiles/minnow.dir/base/logging.cc.o" "gcc" "src/CMakeFiles/minnow.dir/base/logging.cc.o.d"
  "/root/repo/src/base/options.cc" "src/CMakeFiles/minnow.dir/base/options.cc.o" "gcc" "src/CMakeFiles/minnow.dir/base/options.cc.o.d"
  "/root/repo/src/base/stats.cc" "src/CMakeFiles/minnow.dir/base/stats.cc.o" "gcc" "src/CMakeFiles/minnow.dir/base/stats.cc.o.d"
  "/root/repo/src/base/table.cc" "src/CMakeFiles/minnow.dir/base/table.cc.o" "gcc" "src/CMakeFiles/minnow.dir/base/table.cc.o.d"
  "/root/repo/src/base/trace.cc" "src/CMakeFiles/minnow.dir/base/trace.cc.o" "gcc" "src/CMakeFiles/minnow.dir/base/trace.cc.o.d"
  "/root/repo/src/bsp/bsp_engine.cc" "src/CMakeFiles/minnow.dir/bsp/bsp_engine.cc.o" "gcc" "src/CMakeFiles/minnow.dir/bsp/bsp_engine.cc.o.d"
  "/root/repo/src/cpu/ooo_core.cc" "src/CMakeFiles/minnow.dir/cpu/ooo_core.cc.o" "gcc" "src/CMakeFiles/minnow.dir/cpu/ooo_core.cc.o.d"
  "/root/repo/src/galois/executor.cc" "src/CMakeFiles/minnow.dir/galois/executor.cc.o" "gcc" "src/CMakeFiles/minnow.dir/galois/executor.cc.o.d"
  "/root/repo/src/graph/builder.cc" "src/CMakeFiles/minnow.dir/graph/builder.cc.o" "gcc" "src/CMakeFiles/minnow.dir/graph/builder.cc.o.d"
  "/root/repo/src/graph/csr.cc" "src/CMakeFiles/minnow.dir/graph/csr.cc.o" "gcc" "src/CMakeFiles/minnow.dir/graph/csr.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/CMakeFiles/minnow.dir/graph/generators.cc.o" "gcc" "src/CMakeFiles/minnow.dir/graph/generators.cc.o.d"
  "/root/repo/src/graph/gstats.cc" "src/CMakeFiles/minnow.dir/graph/gstats.cc.o" "gcc" "src/CMakeFiles/minnow.dir/graph/gstats.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/CMakeFiles/minnow.dir/graph/io.cc.o" "gcc" "src/CMakeFiles/minnow.dir/graph/io.cc.o.d"
  "/root/repo/src/harness/workloads.cc" "src/CMakeFiles/minnow.dir/harness/workloads.cc.o" "gcc" "src/CMakeFiles/minnow.dir/harness/workloads.cc.o.d"
  "/root/repo/src/mem/memory_system.cc" "src/CMakeFiles/minnow.dir/mem/memory_system.cc.o" "gcc" "src/CMakeFiles/minnow.dir/mem/memory_system.cc.o.d"
  "/root/repo/src/mem/noc.cc" "src/CMakeFiles/minnow.dir/mem/noc.cc.o" "gcc" "src/CMakeFiles/minnow.dir/mem/noc.cc.o.d"
  "/root/repo/src/mem/prefetcher.cc" "src/CMakeFiles/minnow.dir/mem/prefetcher.cc.o" "gcc" "src/CMakeFiles/minnow.dir/mem/prefetcher.cc.o.d"
  "/root/repo/src/minnow/area.cc" "src/CMakeFiles/minnow.dir/minnow/area.cc.o" "gcc" "src/CMakeFiles/minnow.dir/minnow/area.cc.o.d"
  "/root/repo/src/minnow/engine.cc" "src/CMakeFiles/minnow.dir/minnow/engine.cc.o" "gcc" "src/CMakeFiles/minnow.dir/minnow/engine.cc.o.d"
  "/root/repo/src/minnow/global_queue.cc" "src/CMakeFiles/minnow.dir/minnow/global_queue.cc.o" "gcc" "src/CMakeFiles/minnow.dir/minnow/global_queue.cc.o.d"
  "/root/repo/src/minnow/minnow_system.cc" "src/CMakeFiles/minnow.dir/minnow/minnow_system.cc.o" "gcc" "src/CMakeFiles/minnow.dir/minnow/minnow_system.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/minnow.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/minnow.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/minnow.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/minnow.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/worklist/chunked.cc" "src/CMakeFiles/minnow.dir/worklist/chunked.cc.o" "gcc" "src/CMakeFiles/minnow.dir/worklist/chunked.cc.o.d"
  "/root/repo/src/worklist/obim.cc" "src/CMakeFiles/minnow.dir/worklist/obim.cc.o" "gcc" "src/CMakeFiles/minnow.dir/worklist/obim.cc.o.d"
  "/root/repo/src/worklist/strict_priority.cc" "src/CMakeFiles/minnow.dir/worklist/strict_priority.cc.o" "gcc" "src/CMakeFiles/minnow.dir/worklist/strict_priority.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
