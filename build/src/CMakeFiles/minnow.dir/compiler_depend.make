# Empty compiler generated dependencies file for minnow.
# This may be replaced when dependencies are built.
