file(REMOVE_RECURSE
  "CMakeFiles/custom_accelerator_study.dir/custom_accelerator_study.cpp.o"
  "CMakeFiles/custom_accelerator_study.dir/custom_accelerator_study.cpp.o.d"
  "custom_accelerator_study"
  "custom_accelerator_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_accelerator_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
