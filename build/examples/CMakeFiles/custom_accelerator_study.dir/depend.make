# Empty dependencies file for custom_accelerator_study.
# This may be replaced when dependencies are built.
