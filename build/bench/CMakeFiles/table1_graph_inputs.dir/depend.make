# Empty dependencies file for table1_graph_inputs.
# This may be replaced when dependencies are built.
