file(REMOVE_RECURSE
  "CMakeFiles/abl_engine_sharing.dir/abl_engine_sharing.cc.o"
  "CMakeFiles/abl_engine_sharing.dir/abl_engine_sharing.cc.o.d"
  "abl_engine_sharing"
  "abl_engine_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_engine_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
