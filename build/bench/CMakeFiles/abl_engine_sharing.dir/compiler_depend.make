# Empty compiler generated dependencies file for abl_engine_sharing.
# This may be replaced when dependencies are built.
