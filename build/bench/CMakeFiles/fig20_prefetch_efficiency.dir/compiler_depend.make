# Empty compiler generated dependencies file for fig20_prefetch_efficiency.
# This may be replaced when dependencies are built.
