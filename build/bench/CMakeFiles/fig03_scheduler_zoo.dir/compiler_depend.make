# Empty compiler generated dependencies file for fig03_scheduler_zoo.
# This may be replaced when dependencies are built.
