file(REMOVE_RECURSE
  "CMakeFiles/fig03_scheduler_zoo.dir/fig03_scheduler_zoo.cc.o"
  "CMakeFiles/fig03_scheduler_zoo.dir/fig03_scheduler_zoo.cc.o.d"
  "fig03_scheduler_zoo"
  "fig03_scheduler_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_scheduler_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
