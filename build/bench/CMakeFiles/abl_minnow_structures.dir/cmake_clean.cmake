file(REMOVE_RECURSE
  "CMakeFiles/abl_minnow_structures.dir/abl_minnow_structures.cc.o"
  "CMakeFiles/abl_minnow_structures.dir/abl_minnow_structures.cc.o.d"
  "abl_minnow_structures"
  "abl_minnow_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_minnow_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
