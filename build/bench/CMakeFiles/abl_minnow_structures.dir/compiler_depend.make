# Empty compiler generated dependencies file for abl_minnow_structures.
# This may be replaced when dependencies are built.
