file(REMOVE_RECURSE
  "CMakeFiles/fig16_overall_speedup.dir/fig16_overall_speedup.cc.o"
  "CMakeFiles/fig16_overall_speedup.dir/fig16_overall_speedup.cc.o.d"
  "fig16_overall_speedup"
  "fig16_overall_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_overall_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
