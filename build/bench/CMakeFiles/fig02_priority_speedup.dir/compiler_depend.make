# Empty compiler generated dependencies file for fig02_priority_speedup.
# This may be replaced when dependencies are built.
