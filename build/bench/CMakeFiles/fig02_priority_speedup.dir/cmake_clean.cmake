file(REMOVE_RECURSE
  "CMakeFiles/fig02_priority_speedup.dir/fig02_priority_speedup.cc.o"
  "CMakeFiles/fig02_priority_speedup.dir/fig02_priority_speedup.cc.o.d"
  "fig02_priority_speedup"
  "fig02_priority_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_priority_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
