file(REMOVE_RECURSE
  "CMakeFiles/fig19_speedup_credits.dir/fig19_speedup_credits.cc.o"
  "CMakeFiles/fig19_speedup_credits.dir/fig19_speedup_credits.cc.o.d"
  "fig19_speedup_credits"
  "fig19_speedup_credits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_speedup_credits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
