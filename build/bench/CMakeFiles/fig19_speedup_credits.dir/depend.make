# Empty dependencies file for fig19_speedup_credits.
# This may be replaced when dependencies are built.
