# Empty dependencies file for fig18_mpki_credits.
# This may be replaced when dependencies are built.
