file(REMOVE_RECURSE
  "CMakeFiles/fig18_mpki_credits.dir/fig18_mpki_credits.cc.o"
  "CMakeFiles/fig18_mpki_credits.dir/fig18_mpki_credits.cc.o.d"
  "fig18_mpki_credits"
  "fig18_mpki_credits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_mpki_credits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
