file(REMOVE_RECURSE
  "CMakeFiles/abl_task_split.dir/abl_task_split.cc.o"
  "CMakeFiles/abl_task_split.dir/abl_task_split.cc.o.d"
  "abl_task_split"
  "abl_task_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_task_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
