# Empty dependencies file for abl_task_split.
# This may be replaced when dependencies are built.
