file(REMOVE_RECURSE
  "CMakeFiles/fig17_imp_comparison.dir/fig17_imp_comparison.cc.o"
  "CMakeFiles/fig17_imp_comparison.dir/fig17_imp_comparison.cc.o.d"
  "fig17_imp_comparison"
  "fig17_imp_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_imp_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
