# Empty dependencies file for fig17_imp_comparison.
# This may be replaced when dependencies are built.
