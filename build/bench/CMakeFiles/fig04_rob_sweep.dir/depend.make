# Empty dependencies file for fig04_rob_sweep.
# This may be replaced when dependencies are built.
