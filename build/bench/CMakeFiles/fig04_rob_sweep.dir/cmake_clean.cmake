file(REMOVE_RECURSE
  "CMakeFiles/fig04_rob_sweep.dir/fig04_rob_sweep.cc.o"
  "CMakeFiles/fig04_rob_sweep.dir/fig04_rob_sweep.cc.o.d"
  "fig04_rob_sweep"
  "fig04_rob_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_rob_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
