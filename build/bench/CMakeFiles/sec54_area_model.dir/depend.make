# Empty dependencies file for sec54_area_model.
# This may be replaced when dependencies are built.
