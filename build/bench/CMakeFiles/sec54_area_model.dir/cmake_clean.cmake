file(REMOVE_RECURSE
  "CMakeFiles/sec54_area_model.dir/sec54_area_model.cc.o"
  "CMakeFiles/sec54_area_model.dir/sec54_area_model.cc.o.d"
  "sec54_area_model"
  "sec54_area_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec54_area_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
