file(REMOVE_RECURSE
  "CMakeFiles/fig06_delinquent_density.dir/fig06_delinquent_density.cc.o"
  "CMakeFiles/fig06_delinquent_density.dir/fig06_delinquent_density.cc.o.d"
  "fig06_delinquent_density"
  "fig06_delinquent_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_delinquent_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
