# Empty dependencies file for fig06_delinquent_density.
# This may be replaced when dependencies are built.
