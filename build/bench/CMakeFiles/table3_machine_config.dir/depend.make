# Empty dependencies file for table3_machine_config.
# This may be replaced when dependencies are built.
