# Empty dependencies file for fig11_worklist_interval.
# This may be replaced when dependencies are built.
