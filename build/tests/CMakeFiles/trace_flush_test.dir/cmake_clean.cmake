file(REMOVE_RECURSE
  "CMakeFiles/trace_flush_test.dir/trace_flush_test.cc.o"
  "CMakeFiles/trace_flush_test.dir/trace_flush_test.cc.o.d"
  "trace_flush_test"
  "trace_flush_test.pdb"
  "trace_flush_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_flush_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
