# Empty compiler generated dependencies file for trace_flush_test.
# This may be replaced when dependencies are built.
