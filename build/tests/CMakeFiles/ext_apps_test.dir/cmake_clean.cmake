file(REMOVE_RECURSE
  "CMakeFiles/ext_apps_test.dir/ext_apps_test.cc.o"
  "CMakeFiles/ext_apps_test.dir/ext_apps_test.cc.o.d"
  "ext_apps_test"
  "ext_apps_test.pdb"
  "ext_apps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
