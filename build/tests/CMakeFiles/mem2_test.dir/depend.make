# Empty dependencies file for mem2_test.
# This may be replaced when dependencies are built.
