file(REMOVE_RECURSE
  "CMakeFiles/mem2_test.dir/mem2_test.cc.o"
  "CMakeFiles/mem2_test.dir/mem2_test.cc.o.d"
  "mem2_test"
  "mem2_test.pdb"
  "mem2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
