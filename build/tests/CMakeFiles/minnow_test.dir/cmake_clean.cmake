file(REMOVE_RECURSE
  "CMakeFiles/minnow_test.dir/minnow_test.cc.o"
  "CMakeFiles/minnow_test.dir/minnow_test.cc.o.d"
  "minnow_test"
  "minnow_test.pdb"
  "minnow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minnow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
