# Empty dependencies file for minnow_test.
# This may be replaced when dependencies are built.
