file(REMOVE_RECURSE
  "CMakeFiles/worklist_test.dir/worklist_test.cc.o"
  "CMakeFiles/worklist_test.dir/worklist_test.cc.o.d"
  "worklist_test"
  "worklist_test.pdb"
  "worklist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worklist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
