# Empty compiler generated dependencies file for worklist_test.
# This may be replaced when dependencies are built.
