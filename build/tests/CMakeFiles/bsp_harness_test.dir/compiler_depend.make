# Empty compiler generated dependencies file for bsp_harness_test.
# This may be replaced when dependencies are built.
