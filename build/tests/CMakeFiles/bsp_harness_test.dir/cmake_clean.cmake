file(REMOVE_RECURSE
  "CMakeFiles/bsp_harness_test.dir/bsp_harness_test.cc.o"
  "CMakeFiles/bsp_harness_test.dir/bsp_harness_test.cc.o.d"
  "bsp_harness_test"
  "bsp_harness_test.pdb"
  "bsp_harness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsp_harness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
