# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/worklist_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/minnow_test[1]_include.cmake")
include("/root/repo/build/tests/bsp_harness_test[1]_include.cmake")
include("/root/repo/build/tests/param_test[1]_include.cmake")
include("/root/repo/build/tests/mem2_test[1]_include.cmake")
include("/root/repo/build/tests/ext_apps_test[1]_include.cmake")
include("/root/repo/build/tests/trace_flush_test[1]_include.cmake")
