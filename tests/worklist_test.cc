/**
 * @file
 * Unit tests for the software worklists driven through real
 * simulated workers: item conservation, ordering properties (FIFO /
 * LIFO / OBIM bucket order), stealing, and the strict priority heap.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "runtime/machine.hh"
#include "runtime/sim_context.hh"
#include "runtime/task.hh"
#include "worklist/chunked.hh"
#include "worklist/obim.hh"
#include "worklist/strict_priority.hh"

namespace minnow::worklist
{
namespace
{

using runtime::CoTask;
using runtime::Machine;
using runtime::SimContext;

MachineConfig
tinyConfig(std::uint32_t cores)
{
    MachineConfig cfg = scaledMachine();
    cfg.numCores = cores;
    return cfg;
}

/** Push a batch then pop everything from one worker. */
CoTask<void>
pushPopAll(SimContext &ctx, Worklist &wl,
           const std::vector<WorkItem> &in, std::vector<WorkItem> &out)
{
    for (const WorkItem &item : in)
        co_await wl.push(ctx, item);
    for (;;) {
        WorkItem item;
        bool got = co_await wl.pop(ctx, item);
        if (!got)
            break;
        out.push_back(item);
    }
}

std::vector<WorkItem>
runSingle(Worklist &wl, Machine &m, const std::vector<WorkItem> &in)
{
    SimContext ctx(&m, 0);
    std::vector<WorkItem> out;
    CoTask<void> t = pushPopAll(ctx, wl, in, out);
    t.start();
    m.eq.run();
    EXPECT_TRUE(t.done());
    return out;
}

std::vector<WorkItem>
makeItems(int n)
{
    std::vector<WorkItem> items;
    for (int i = 0; i < n; ++i)
        items.push_back({i, std::uint64_t(1000 + i)});
    return items;
}

TEST(ChunkPool, RecyclesChunks)
{
    SimAlloc alloc;
    ChunkPool pool(&alloc, 8);
    Chunk *a = pool.acquire();
    Addr base = a->base;
    a->items.push_back({1, 2});
    a->head = 1;
    pool.release(a);
    Chunk *b = pool.acquire();
    EXPECT_EQ(b, a);
    EXPECT_EQ(b->base, base);
    EXPECT_TRUE(b->items.empty());
    EXPECT_EQ(pool.liveChunks(), 1u);
}

TEST(ChunkedFifo, ConservesAndOrders)
{
    Machine m(tinyConfig(2));
    ChunkedWorklist wl(&m, ChunkedWorklist::Policy::Fifo, 8, 1);
    auto in = makeItems(40);
    auto out = runSingle(wl, m, in);
    ASSERT_EQ(out.size(), in.size());
    // Single worker: its own unpublished chunk is drained first, but
    // every item must appear exactly once.
    std::multiset<std::uint64_t> want, got;
    for (auto &i : in)
        want.insert(i.payload);
    for (auto &o : out)
        got.insert(o.payload);
    EXPECT_EQ(want, got);
    EXPECT_EQ(wl.size(), 0u);
    EXPECT_TRUE(m.monitor.pending() == 0);
}

TEST(ChunkedLifo, PrefersNewestChunk)
{
    Machine m(tinyConfig(2));
    ChunkedWorklist wl(&m, ChunkedWorklist::Policy::Lifo, 4, 1);
    // Seed via pushInitial (goes straight to the global list).
    for (int i = 0; i < 12; ++i)
        wl.pushInitial({0, std::uint64_t(i)});
    auto out = runSingle(wl, m, {});
    ASSERT_EQ(out.size(), 12u);
    // LIFO: first pop comes from the newest chunk (items 8..11),
    // and within it the newest item first.
    EXPECT_EQ(out[0].payload, 11u);
}

TEST(ChunkedFifo, InitialSeedsFifoOrder)
{
    Machine m(tinyConfig(2));
    ChunkedWorklist wl(&m, ChunkedWorklist::Policy::Fifo, 4, 1);
    for (int i = 0; i < 12; ++i)
        wl.pushInitial({0, std::uint64_t(i)});
    auto out = runSingle(wl, m, {});
    ASSERT_EQ(out.size(), 12u);
    EXPECT_EQ(out[0].payload, 0u);
    EXPECT_EQ(out.back().payload, 11u);
}

TEST(Obim, DrainsBucketsInPriorityOrder)
{
    Machine m(tinyConfig(2));
    ObimWorklist wl(&m, 2, 4, 1); // bucket = priority >> 2.
    for (int i = 0; i < 32; ++i)
        wl.pushInitial({31 - i, std::uint64_t(31 - i)});
    auto out = runSingle(wl, m, {});
    ASSERT_EQ(out.size(), 32u);
    // Bucket numbers must be nondecreasing over the drain.
    for (std::size_t i = 1; i < out.size(); ++i) {
        EXPECT_LE(out[i - 1].priority >> 2, out[i].priority >> 2)
            << "at index " << i;
    }
}

TEST(Obim, PushRespectsBuckets)
{
    Machine m(tinyConfig(2));
    ObimWorklist wl(&m, 0, 4, 1); // strict buckets.
    std::vector<WorkItem> in;
    for (int i : {9, 3, 7, 1, 5, 0, 8, 2, 6, 4})
        in.push_back({i, std::uint64_t(i)});
    auto out = runSingle(wl, m, in);
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 1; i < out.size(); ++i)
        EXPECT_LE(out[i - 1].priority, out[i].priority);
}

TEST(Obim, NegativePriorities)
{
    Machine m(tinyConfig(2));
    ObimWorklist wl(&m, 3, 4, 1);
    std::vector<WorkItem> in = {
        {-100, 1}, {50, 2}, {-7, 3}, {0, 4}, {-100, 5}};
    auto out = runSingle(wl, m, in);
    ASSERT_EQ(out.size(), 5u);
    for (std::size_t i = 1; i < out.size(); ++i)
        EXPECT_LE(out[i - 1].priority >> 3, out[i].priority >> 3);
    EXPECT_EQ(out[0].priority, -100);
}

TEST(Strict, ExactPriorityOrder)
{
    Machine m(tinyConfig(2));
    StrictPriorityWorklist wl(&m);
    std::vector<WorkItem> in;
    for (int i : {9, 3, 7, 1, 5, 0, 8, 2, 6, 4})
        in.push_back({i, std::uint64_t(i)});
    auto out = runSingle(wl, m, in);
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 1; i < out.size(); ++i)
        EXPECT_LE(out[i - 1].priority, out[i].priority);
    EXPECT_EQ(out[0].priority, 0);
}

/** Two workers: one produces, one steals. */
TEST(ChunkedFifo, CrossWorkerStealing)
{
    Machine m(tinyConfig(2));
    ChunkedWorklist wl(&m, ChunkedWorklist::Policy::Fifo, 4, 2);
    // Producer on core 0 (package 0), consumer on core 1 (package 1
    // with 2 packages over 2 cores).
    SimContext producer(&m, 0), consumer(&m, 1);
    std::vector<WorkItem> stolen;

    auto produce = [](SimContext &ctx,
                      Worklist &wl) -> CoTask<void> {
        for (int i = 0; i < 16; ++i)
            co_await wl.push(ctx, {0, std::uint64_t(i)});
    };
    auto consume = [](SimContext &ctx, Worklist &wl,
                      std::vector<WorkItem> &out) -> CoTask<void> {
        // Wait until the producer published something.
        for (int attempts = 0; attempts < 100; ++attempts) {
            WorkItem item;
            bool got = co_await wl.pop(ctx, item);
            if (got)
                out.push_back(item);
            co_await ctx.waitUntil(ctx.eq().now() + 500);
        }
    };
    CoTask<void> p = produce(producer, wl);
    CoTask<void> c = consume(consumer, wl, stolen);
    p.start();
    c.start();
    m.eq.run();
    EXPECT_TRUE(p.done());
    EXPECT_TRUE(c.done());
    EXPECT_GT(stolen.size(), 0u) << "consumer must steal published"
                                    " chunks from the other package";
}

TEST(Worklists, PopCostsCycles)
{
    Machine m(tinyConfig(2));
    ChunkedWorklist wl(&m, ChunkedWorklist::Policy::Fifo, 8, 1);
    for (int i = 0; i < 8; ++i)
        wl.pushInitial({0, std::uint64_t(i)});
    auto out = runSingle(wl, m, {});
    EXPECT_EQ(out.size(), 8u);
    const auto &st = m.cores[0]->stats();
    EXPECT_GT(st.phases[int(cpu::Phase::Worklist)].cycles, 0u);
    EXPECT_GT(st.uops, 0u);
}

} // anonymous namespace
} // namespace minnow::worklist
