/**
 * @file
 * Tests for deterministic fault injection, graceful engine
 * degradation, and the simulation watchdog: spec parsing, engine
 * kill/stall runs that must still produce correct output with exact
 * work accounting, credit starvation, prefetch drops (credit
 * conservation), delay faults, watchdog livelock detection, the
 * shared diagnostic dump, panic-hook stats snapshots, and the
 * replayability contract (same spec + seed => identical stats JSON).
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <memory>
#include <string>

#include "apps/sssp.hh"
#include "graph/generators.hh"
#include "harness/workloads.hh"
#include "minnow/engine.hh"
#include "minnow/global_queue.hh"
#include "minnow/minnow_system.hh"
#include "runtime/machine.hh"
#include "sim/fault.hh"
#include "sim/watchdog.hh"

namespace minnow
{
namespace
{

using galois::RunConfig;
using galois::RunResult;
using minnowengine::EngineStats;
using minnowengine::runMinnow;
using runtime::Machine;

MachineConfig
minnowConfig(std::uint32_t cores, bool prefetch)
{
    MachineConfig cfg = scaledMachine();
    cfg.numCores = cores;
    cfg.minnow.enabled = true;
    cfg.minnow.prefetchEnabled = prefetch;
    return cfg;
}

// ---------------------------------------------------------------
// Spec parsing.
// ---------------------------------------------------------------

TEST(FaultSpec, ParsesIssueExample)
{
    FaultInjector fi(
        "engine_stall:core=3,at=50000,dur=20000;"
        "noc_delay:p=0.01,add=200;"
        "drop_prefetch:p=0.05;"
        "credit_starve:core=7,at=10000",
        1);
    ASSERT_EQ(fi.clauses().size(), 4u);

    const FaultClause &stall = fi.clauses()[0];
    EXPECT_EQ(stall.kind, FaultClause::Kind::EngineStall);
    EXPECT_EQ(stall.core, 3u);
    EXPECT_EQ(stall.at, 50000u);
    EXPECT_EQ(stall.dur, 20000u);
    EXPECT_STREQ(stall.kindName(), "engine_stall");

    const FaultClause &noc = fi.clauses()[1];
    EXPECT_EQ(noc.kind, FaultClause::Kind::NocDelay);
    EXPECT_DOUBLE_EQ(noc.p, 0.01);
    EXPECT_EQ(noc.add, 200u);
    EXPECT_EQ(noc.core, FaultClause::kAnyCore);

    const FaultClause &drop = fi.clauses()[2];
    EXPECT_EQ(drop.kind, FaultClause::Kind::DropPrefetch);
    EXPECT_DOUBLE_EQ(drop.p, 0.05);

    const FaultClause &starve = fi.clauses()[3];
    EXPECT_EQ(starve.kind, FaultClause::Kind::CreditStarve);
    EXPECT_EQ(starve.core, 7u);
    EXPECT_EQ(starve.dur, 0u); // forever.
}

TEST(FaultSpec, ToleratesWhitespaceAndEmptyClauses)
{
    FaultInjector fi(" engine_kill : core = 2 , at = 100 ;; ", 1);
    ASSERT_EQ(fi.clauses().size(), 1u);
    EXPECT_EQ(fi.clauses()[0].kind, FaultClause::Kind::EngineKill);
    EXPECT_EQ(fi.clauses()[0].core, 2u);
    EXPECT_EQ(fi.clauses()[0].at, 100u);
}

TEST(FaultSpecDeathTest, RejectsMalformedSpecs)
{
    EXPECT_EXIT(FaultInjector("engine_melt:core=1", 1),
                testing::ExitedWithCode(1), "unknown fault kind");
    EXPECT_EXIT(FaultInjector("noc_delay:frob=2,add=10", 1),
                testing::ExitedWithCode(1), "unknown key");
    EXPECT_EXIT(FaultInjector("drop_prefetch:p=1.5", 1),
                testing::ExitedWithCode(1), "outside \\[0, 1\\]");
    EXPECT_EXIT(FaultInjector("engine_kill:at=5", 1),
                testing::ExitedWithCode(1), "needs core=");
    EXPECT_EXIT(FaultInjector("engine_stall:core=1,at=5", 1),
                testing::ExitedWithCode(1), "needs dur=");
    EXPECT_EXIT(FaultInjector("noc_delay:p=0.5", 1),
                testing::ExitedWithCode(1), "needs add=");
    EXPECT_EXIT(FaultInjector("noc_delay:add=ten", 1),
                testing::ExitedWithCode(1), "bad value");
    EXPECT_EXIT(FaultInjector("  ;  ", 1),
                testing::ExitedWithCode(1), "no clauses");
}

TEST(FaultSpecDeathTest, ErrorsNameTokenAndOffset)
{
    // The diagnostics must name the offending token and its offset
    // within the *full* spec, not just echo the whole string.
    EXPECT_EXIT(
        FaultInjector("noc_delay:p=0.5,add=10;engine_melt:core=1", 1),
        testing::ExitedWithCode(1),
        "unknown fault kind 'engine_melt' at offset 23");
    EXPECT_EXIT(FaultInjector("noc_delay:add=ten", 1),
                testing::ExitedWithCode(1),
                "bad value 'ten' for key 'add' at offset 14");
    EXPECT_EXIT(
        FaultInjector("drop_prefetch:p=1;noc_delay:frob=2,add=10", 1),
        testing::ExitedWithCode(1),
        "unknown key 'frob' at offset 28");
    EXPECT_EXIT(FaultInjector("drop_prefetch:p=1.5", 1),
                testing::ExitedWithCode(1),
                "probability '1.5' at offset 16");
    EXPECT_EXIT(FaultInjector("drop_prefetch:oops", 1),
                testing::ExitedWithCode(1),
                "expected key=value, got 'oops' at offset 14");
}

TEST(FaultSpec, WindowsAndTargets)
{
    FaultInjector fi("dram_delay:p=1,add=50,at=100,dur=10", 7);
    Cycle now = 0;
    fi.bindClock(&now);
    EXPECT_EQ(fi.dramExtraDelay(), 0u); // before onset.
    now = 100;
    EXPECT_EQ(fi.dramExtraDelay(), 50u);
    now = 109;
    EXPECT_EQ(fi.dramExtraDelay(), 50u);
    now = 110;
    EXPECT_EQ(fi.dramExtraDelay(), 0u); // window closed.
    EXPECT_EQ(fi.stats().dramDelays, 2u);
    EXPECT_EQ(fi.stats().dramDelayCycles, 100u);
}

// ---------------------------------------------------------------
// Full-run degradation: faulted engines must never lose tasks.
// ---------------------------------------------------------------

RunResult
runSsspWithFaults(std::uint32_t threads, bool prefetch,
                  const std::string &spec, EngineStats *es = nullptr,
                  std::unique_ptr<Machine> *keepAlive = nullptr,
                  bool specSlot = false)
{
    graph::CsrGraph g = graph::gridGraph(24, 24, 100, 1);
    apps::SsspApp app(&g, 0, false, 1u << 30, "sssp");
    MachineConfig cfg = minnowConfig(std::max(threads, 2u), prefetch);
    cfg.faultSpec = spec;
    cfg.minnow.specSlot = specSlot;
    auto m = std::make_unique<Machine>(cfg);
    g.assignAddresses(m->alloc, 32);
    app.reset();
    RunConfig rc;
    rc.threads = threads;
    RunResult r = runMinnow(*m, app, 3, rc, es);
    if (keepAlive)
        *keepAlive = std::move(m);
    return r;
}

TEST(FaultRun, EngineKillAt64ThreadsCompletesCorrectly)
{
    EngineStats es;
    std::unique_ptr<Machine> m;
    RunResult r = runSsspWithFaults(
        64, true, "engine_kill:core=0,at=5000", &es, &m);
    EXPECT_FALSE(r.timedOut);
    EXPECT_TRUE(r.verified);
    EXPECT_TRUE(m->monitor.terminated());
    EXPECT_EQ(m->monitor.pending(), 0u);
    EXPECT_EQ(es.faultKills, 1u);
    // The killed engine's worker kept popping via the software path.
    EXPECT_GT(es.fallbackPops, 0u);
}

TEST(FaultRun, KillingSeveralEnginesStillDrainsAllWork)
{
    EngineStats es;
    std::unique_ptr<Machine> m;
    RunResult r = runSsspWithFaults(
        8, false,
        "engine_kill:core=0,at=2000;engine_kill:core=3,at=4000;"
        "engine_kill:core=5,at=1000",
        &es, &m);
    EXPECT_FALSE(r.timedOut);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(m->monitor.pending(), 0u);
    EXPECT_EQ(es.faultKills, 3u);
}

TEST(FaultRun, EngineStallDegradesThenRecovers)
{
    EngineStats es;
    RunResult r = runSsspWithFaults(
        8, true, "engine_stall:core=0,at=3000,dur=30000", &es);
    EXPECT_FALSE(r.timedOut);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(es.faultStalls, 1u);
    EXPECT_EQ(es.faultKills, 0u);
}

TEST(FaultRun, CreditStarvationDoesNotLoseWork)
{
    EngineStats es;
    RunResult r = runSsspWithFaults(
        4, true, "credit_starve:core=0,at=0", &es);
    EXPECT_FALSE(r.timedOut);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(es.creditsLost, 0u);
}

TEST(FaultRun, DroppedPrefetchesConsumeNoCredits)
{
    EngineStats es;
    std::unique_ptr<Machine> m;
    RunResult r =
        runSsspWithFaults(4, true, "drop_prefetch:p=1", &es, &m);
    EXPECT_FALSE(r.timedOut);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(es.prefetchDropped, 0u);
    // Every issue was dropped before acquiring a credit, so no
    // prefetch-marked line was ever installed.
    EXPECT_EQ(r.mem.prefetchFills, 0u);
    EXPECT_EQ(m->faults->stats().prefetchDrops, es.prefetchDropped);
}

TEST(FaultRun, DelayFaultsSlowTheRunDown)
{
    graph::CsrGraph g = graph::gridGraph(24, 24, 100, 1);
    apps::SsspApp app(&g, 0, false, 1u << 30, "sssp");
    Machine clean(minnowConfig(4, false));
    g.assignAddresses(clean.alloc, 32);
    app.reset();
    RunConfig rc;
    rc.threads = 4;
    RunResult cleanR = runMinnow(clean, app, 3, rc);
    EXPECT_FALSE(cleanR.timedOut);

    RunResult slow = runSsspWithFaults(
        4, false, "dram_delay:p=1,add=400;noc_delay:p=1,add=100");
    EXPECT_FALSE(slow.timedOut);
    EXPECT_TRUE(slow.verified);
    EXPECT_GT(slow.cycles, cleanR.cycles);
}

TEST(EngineDegradation, InjectedKillReleasesBlockedWorker)
{
    Machine m(minnowConfig(2, false));
    // Worker 0 blocks in the engine; a phantom second worker (driven
    // by the test body) holds private pending work so the run cannot
    // terminate early.
    m.monitor.reset(2);
    int termFires = 0;
    m.monitor.subscribeTermination([&] { termFires += 1; });
    minnowengine::MinnowGlobalQueue q(&m.alloc, 3);
    minnowengine::PrefetchProgram prog;
    minnowengine::MinnowEngine eng(&m, 0, &q, prog);
    m.monitor.subscribeTermination([&eng] { eng.onTerminate(); });
    m.monitor.addWork(1, false); // the phantom worker's task.

    runtime::SimContext ctx(&m, 0);
    std::optional<worklist::WorkItem> result;
    bool resultSet = false;
    auto driver = [](runtime::SimContext &ctx,
                     minnowengine::MinnowEngine &eng,
                     std::optional<worklist::WorkItem> &out,
                     bool &set) -> runtime::CoTask<void> {
        out = co_await eng.dequeue(ctx);
        set = true;
    };
    runtime::CoTask<void> t = driver(ctx, eng, result, resultSet);
    t.start();

    // Kill the engine while the worker is blocked inside it.
    m.eq.schedule(5000, [](void *p) {
        static_cast<minnowengine::MinnowEngine *>(p)->injectKill();
    }, &eng);
    m.eq.run();

    // The kill released the worker; it fell back to the software
    // path, found nothing stealable, and parked on the monitor.
    // Crucially the run has NOT terminated: the phantom task is
    // still pending.
    EXPECT_FALSE(resultSet);
    EXPECT_FALSE(m.monitor.terminated());
    EXPECT_TRUE(eng.dead());
    EXPECT_EQ(eng.stats().faultKills, 1u);
    EXPECT_EQ(m.monitor.pending(), 1u);

    // The phantom worker finishes its task and goes idle: pending
    // reaches 0 with everyone idle, so termination is declared
    // (exactly once) and the parked worker drains with nullopt.
    m.monitor.takeWork(1, false);
    m.monitor.enterIdle();
    m.eq.run();
    ASSERT_TRUE(t.done());
    EXPECT_TRUE(resultSet);
    EXPECT_FALSE(result.has_value());
    EXPECT_TRUE(m.monitor.terminated());
    EXPECT_EQ(m.monitor.pending(), 0u);
    EXPECT_EQ(termFires, 1);
}

TEST(EngineDegradation, KillRescuesLocalTasksToGlobalQueue)
{
    Machine m(minnowConfig(2, false));
    m.monitor.reset(1);
    minnowengine::MinnowGlobalQueue q(&m.alloc, 3);
    minnowengine::PrefetchProgram prog;
    minnowengine::MinnowEngine eng(&m, 0, &q, prog);

    // Seed two private tasks into the engine's local queue.
    m.monitor.addWork(2, false);
    eng.seedLocal({1, 10});
    eng.seedLocal({2, 11});
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(m.monitor.stealable(), 0u);

    eng.injectKill();

    // Both tasks moved to the global queue and turned stealable;
    // pending is untouched (no work lost, none double-counted).
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(eng.localQueueSize(), 0u);
    EXPECT_EQ(eng.stats().tasksRescued, 2u);
    EXPECT_EQ(m.monitor.pending(), 2u);
    EXPECT_EQ(m.monitor.stealable(), 2u);
}

TEST(EngineDegradation, OverlappingRescuesAreIdempotent)
{
    // A stall rescue followed by a kill before the stall window
    // closes runs rescueLocalTasks twice. Drain-to-empty semantics
    // must make the second pass a no-op: every seeded task crosses
    // to the global queue exactly once.
    Machine m(minnowConfig(2, false));
    m.monitor.reset(1);
    minnowengine::MinnowGlobalQueue q(&m.alloc, 3);
    minnowengine::PrefetchProgram prog;
    minnowengine::MinnowEngine eng(&m, 0, &q, prog);

    m.monitor.addWork(3, false);
    eng.seedLocal({1, 10});
    eng.seedLocal({2, 11});
    eng.seedLocal({3, 12});

    eng.injectStall(5000);
    EXPECT_EQ(eng.stats().tasksRescued, 3u);
    eng.injectKill(); // overlapping second rescue: nothing left.

    EXPECT_EQ(eng.stats().tasksRescued, 3u)
        << "double rescue must not re-count tasks";
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(eng.localQueueSize(), 0u);
    EXPECT_EQ(m.monitor.pending(), 3u);
    EXPECT_EQ(m.monitor.stealable(), 3u);
}

TEST(FaultRun, SpecSlotKillConservesAllWork)
{
    // Killing an engine while --spec-slot may have a deposit in
    // flight (or parked in a core slot) must reclaim it: the run
    // still verifies and every deposit is either consumed or
    // reclaimed.
    EngineStats es;
    std::unique_ptr<Machine> m;
    RunResult r = runSsspWithFaults(4, true,
                                    "engine_kill:core=1,at=20000",
                                    &es, &m, /*specSlot=*/true);
    EXPECT_FALSE(r.timedOut);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(m->monitor.pending(), 0u);
    EXPECT_EQ(es.faultKills, 1u);
    EXPECT_EQ(es.specDeposits, es.specHits + es.specReclaims);
}

TEST(EngineCredits, StarvedReturnWakesWaiterExactlyOnce)
{
    // Race audit for the PoolAcquire wake path: a credit return
    // swallowed by fault injection must leave the waiter parked
    // (not resumed-then-recounted), and the first surviving return
    // must wake it exactly once.
    MachineConfig cfg = minnowConfig(2, true);
    cfg.minnow.prefetchCredits = 1;
    cfg.faultSpec = "credit_starve:core=0,at=0,dur=40000";
    Machine m(cfg);
    m.monitor.reset(1);
    minnowengine::MinnowGlobalQueue q(&m.alloc, 3);
    minnowengine::PrefetchProgram prog;
    minnowengine::MinnowEngine eng(&m, 0, &q, prog);
    Addr lineA = m.alloc.allocAnon(64);
    Addr lineB = m.alloc.allocAnon(64);

    int done = 0;
    auto prefetcher = [](Machine &m, minnowengine::MinnowEngine &eng,
                         Addr addr, int &done)
        -> runtime::CoTask<void> {
        minnowengine::ThreadletCtx tc(&eng, m.eq.now());
        co_await tc.load(addr, true);
        done += 1;
    };
    runtime::CoTask<void> a = prefetcher(m, eng, lineA, done);
    runtime::CoTask<void> b = prefetcher(m, eng, lineB, done);
    a.start(); // takes the only credit.
    b.start(); // parks on the pool.
    // In the starvation window: the return is swallowed, the waiter
    // must stay parked.
    m.eq.schedule(10000, [](void *p) {
        auto *e = static_cast<minnowengine::MinnowEngine *>(p);
        e->creditReturn(true);
        EXPECT_EQ(e->stats().creditsLost, 1u);
        EXPECT_EQ(e->creditWaitersNow(), 1u);
    }, &eng);
    // After the window: the return hands off and wakes the waiter.
    m.eq.schedule(60000, [](void *p) {
        static_cast<minnowengine::MinnowEngine *>(p)
            ->creditReturn(true);
    }, &eng);
    m.eq.run();

    ASSERT_TRUE(a.done());
    ASSERT_TRUE(b.done());
    EXPECT_EQ(done, 2) << "waiter must resume exactly once";
    const EngineStats &es = eng.stats();
    EXPECT_EQ(es.creditsLost, 1u);
    EXPECT_EQ(es.creditStalls, 1u)
        << "the swallowed return must not re-count the stall";
    EXPECT_EQ(es.creditHandoffs, 1u);
    EXPECT_EQ(eng.creditWaitersNow(), 0u);
}

// ---------------------------------------------------------------
// Determinism: same spec + seed => byte-identical stats JSON.
// ---------------------------------------------------------------

TEST(FaultDeterminism, SameSpecAndSeedGiveIdenticalStatsJson)
{
    const std::string spec =
        "engine_stall:core=1,at=4000,dur=8000;"
        "dram_delay:p=0.2,add=150;drop_prefetch:p=0.3";
    auto once = [&spec]() {
        harness::Workload w = harness::makeWorkload("sssp", 0.02, 1);
        harness::RunSpec rs;
        rs.config = harness::Config::MinnowPf;
        rs.threads = 4;
        rs.machine.numCores = 4;
        rs.machine.faultSpec = spec;
        rs.machine.faultSeed = 99;
        return harness::runExperiment(w, rs).run.statsJson;
    };
    std::string a = once();
    std::string b = once();
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(FaultDeterminism, DifferentSeedsDiverge)
{
    FaultInjector a("dram_delay:p=0.5,add=100", 1);
    FaultInjector b("dram_delay:p=0.5,add=100", 2);
    Cycle now = 10;
    a.bindClock(&now);
    b.bindClock(&now);
    // Same clause stream, different seeds: the decision sequences
    // must diverge somewhere in a short window.
    bool diverged = false;
    for (int i = 0; i < 64 && !diverged; ++i)
        diverged = (a.dramExtraDelay() != b.dramExtraDelay());
    EXPECT_TRUE(diverged);
}

// ---------------------------------------------------------------
// Watchdog.
// ---------------------------------------------------------------

TEST(WatchdogTest, TripsOnLivelockAndEmitsDiagnostic)
{
    MachineConfig cfg = scaledMachine();
    cfg.numCores = 2;
    Machine m(cfg);
    // A livelock: pending work that nobody consumes while the event
    // queue stays busy with a do-nothing ticker.
    m.monitor.reset(1);
    m.monitor.addWork(1, false);
    struct Ticker
    {
        Machine *m;
        static void
        tick(void *arg)
        {
            auto *t = static_cast<Ticker *>(arg);
            if (!t->m->eq.stopped()) {
                t->m->eq.schedule(t->m->eq.now() + 100,
                                  &Ticker::tick, arg);
            }
        }
    } ticker{&m};
    Ticker::tick(&ticker);

    Watchdog dog(&m, 1000, 3);
    std::string reason;
    dog.setOnStall([&](const std::string &r) {
        reason = r;
        m.eq.stop();
    });
    dog.arm();
    m.eq.run(1'000'000);

    EXPECT_TRUE(dog.tripped());
    EXPECT_GE(dog.checksRun(), 3u);
    EXPECT_NE(reason.find("no forward progress"), std::string::npos);
    EXPECT_NE(reason.find("pending=1"), std::string::npos);

    std::string diag = diagnosticJson(m, reason);
    EXPECT_NE(diag.find("\"schema\":\"minnow-diag-1\""),
              std::string::npos);
    EXPECT_NE(diag.find("\"minnow-stats-1\""), std::string::npos);
    EXPECT_NE(diag.find("\"cores\":["), std::string::npos);
}

TEST(WatchdogTest, StaysQuietOnAHealthyRun)
{
    graph::CsrGraph g = graph::gridGraph(16, 16, 100, 1);
    apps::SsspApp app(&g, 0, false, 1u << 30, "sssp");
    MachineConfig cfg = minnowConfig(4, false);
    cfg.watchdogInterval = 2000;
    cfg.watchdogChecks = 4;
    Machine m(cfg);
    g.assignAddresses(m.alloc, 32);
    app.reset();
    RunConfig rc;
    rc.threads = 4;
    RunResult r = runMinnow(m, app, 3, rc);
    EXPECT_FALSE(r.timedOut);
    EXPECT_TRUE(r.verified);
    ASSERT_NE(m.watchdog, nullptr);
    EXPECT_FALSE(m.watchdog->tripped());
    EXPECT_GT(m.watchdog->checksRun(), 0u);
}

TEST(WatchdogTest, BudgetExhaustionWritesDiagnosticFile)
{
    std::string path = testing::TempDir() + "minnow-diag-test.json";
    std::remove(path.c_str());

    MachineConfig cfg = scaledMachine();
    cfg.numCores = 2;
    cfg.diagnosticPath = path;
    Machine m(cfg);
    struct Ticker
    {
        Machine *m;
        static void
        tick(void *arg)
        {
            auto *t = static_cast<Ticker *>(arg);
            t->m->eq.schedule(t->m->eq.now() + 10, &Ticker::tick,
                              arg);
        }
    } ticker{&m};
    Ticker::tick(&ticker);
    m.eq.run(50); // exhausts the budget with events left over.

    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    buf[n] = '\0';
    std::string doc(buf);
    EXPECT_NE(doc.find("\"schema\":\"minnow-diag-1\""),
              std::string::npos);
    EXPECT_NE(doc.find("event budget exhausted"), std::string::npos);
    std::remove(path.c_str());
}

TEST(WatchdogDeathTest, RejectsZeroIntervalConfig)
{
    MachineConfig cfg = scaledMachine();
    cfg.watchdogInterval = 100;
    cfg.watchdogChecks = 0;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "watchdog");
}

// ---------------------------------------------------------------
// panic() post-mortem.
// ---------------------------------------------------------------

TEST(PanicHookDeathTest, PanicWritesStatsSnapshot)
{
    std::string path = testing::TempDir() + "minnow-panic-test.json";
    std::remove(path.c_str());

    EXPECT_EXIT(
        {
            MachineConfig cfg = scaledMachine();
            cfg.numCores = 2;
            cfg.panicStatsPath = path;
            Machine m(cfg);
            panic("fault test: deliberate panic");
        },
        testing::KilledBySignal(SIGABRT), "deliberate panic");

    // The child process wrote the snapshot before aborting.
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    buf[n] = '\0';
    EXPECT_NE(std::string(buf).find("minnow-stats-1"),
              std::string::npos);
    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace minnow
