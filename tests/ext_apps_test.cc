/**
 * @file
 * Tests for the extension workloads (MIS, k-core): functional
 * correctness against serial references under every scheduler,
 * schedule-independence of results, and edge cases (empty cascade,
 * k larger than every degree, complete graphs).
 */

#include <gtest/gtest.h>

#include "apps/kcore.hh"
#include "apps/mis.hh"
#include "galois/executor.hh"
#include "graph/builder.hh"
#include "graph/generators.hh"
#include "harness/workloads.hh"
#include "minnow/minnow_system.hh"
#include "runtime/machine.hh"
#include "worklist/obim.hh"

namespace minnow
{
namespace
{

using harness::Config;
using harness::makeWorkload;
using harness::RunSpec;
using harness::runExperiment;
using harness::Workload;

MachineConfig
cfg(std::uint32_t cores)
{
    MachineConfig c = scaledMachine();
    c.numCores = cores;
    return c;
}

TEST(Mis, SerialReferenceIsIndependentSet)
{
    graph::CsrGraph g = graph::powerLawGraph(800, 6.0, 0.9, 3, true);
    apps::MisApp app(&g, 1u << 30);
    auto ref = app.referenceSet();
    // Independent: no two adjacent members.
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        if (!ref[v])
            continue;
        for (NodeId u : g.neighbors(v))
            EXPECT_FALSE(ref[u]) << v << "-" << u;
    }
    // Maximal: every non-member has a member neighbour.
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        if (ref[v])
            continue;
        bool hasMember = false;
        for (NodeId u : g.neighbors(v))
            hasMember |= bool(ref[u]);
        EXPECT_TRUE(hasMember) << v;
    }
}

TEST(Mis, ParallelMatchesSerialExactly)
{
    graph::CsrGraph g = graph::powerLawGraph(1000, 6.0, 0.9, 7, true);
    runtime::Machine m(cfg(4));
    g.assignAddresses(m.alloc);
    apps::MisApp app(&g, 256);
    worklist::ObimWorklist wl(&m, 6, 16, 2);
    galois::RunConfig rc;
    rc.threads = 4;
    auto r = galois::runParallel(m, app, wl, rc);
    ASSERT_FALSE(r.timedOut);
    EXPECT_TRUE(r.verified); // bit-exact vs serial greedy.
    EXPECT_GT(app.setSize(), 0u);
    EXPECT_LT(app.setSize(), std::uint64_t(g.numNodes()));
}

TEST(Mis, IsolatedNodesAllJoin)
{
    graph::GraphBuilder b(8); // no edges at all.
    graph::CsrGraph g = b.build(false);
    runtime::Machine m(cfg(2));
    g.assignAddresses(m.alloc);
    apps::MisApp app(&g, 1u << 30);
    worklist::ObimWorklist wl(&m, 0, 8, 1);
    galois::RunConfig rc;
    rc.threads = 2;
    auto r = galois::runParallel(m, app, wl, rc);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(app.setSize(), 8u);
}

TEST(Mis, CompleteGraphPicksOne)
{
    graph::GraphBuilder b(6);
    for (NodeId u = 0; u < 6; ++u) {
        for (NodeId v = u + 1; v < 6; ++v)
            b.addEdge(u, v);
    }
    graph::CsrGraph g = b.symmetrize().build(false);
    runtime::Machine m(cfg(2));
    g.assignAddresses(m.alloc);
    apps::MisApp app(&g, 1u << 30);
    worklist::ObimWorklist wl(&m, 0, 8, 1);
    galois::RunConfig rc;
    rc.threads = 2;
    auto r = galois::runParallel(m, app, wl, rc);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(app.setSize(), 1u);
    EXPECT_EQ(app.inSet()[0], 1); // lexicographic greedy picks 0.
}

TEST(Kcore, ParallelMatchesSerial)
{
    graph::CsrGraph g = graph::wattsStrogatz(1000, 8, 0.2, 5);
    runtime::Machine m(cfg(4));
    g.assignAddresses(m.alloc);
    apps::KcoreApp app(&g, 4, 256);
    worklist::ObimWorklist wl(&m, 2, 16, 2);
    galois::RunConfig rc;
    rc.threads = 4;
    auto r = galois::runParallel(m, app, wl, rc);
    ASSERT_FALSE(r.timedOut);
    EXPECT_TRUE(r.verified);
}

TEST(Kcore, CoreSatisfiesDegreeInvariant)
{
    graph::CsrGraph g = graph::powerLawGraph(800, 6.0, 0.9, 9, true);
    runtime::Machine m(cfg(4));
    g.assignAddresses(m.alloc);
    apps::KcoreApp app(&g, 3, 1u << 30);
    worklist::ObimWorklist wl(&m, 2, 16, 2);
    galois::RunConfig rc;
    rc.threads = 4;
    auto r = galois::runParallel(m, app, wl, rc);
    ASSERT_TRUE(r.verified);
    // Every surviving node has >= k surviving neighbours.
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        if (!app.inCore()[v])
            continue;
        std::uint32_t alive = 0;
        for (NodeId u : g.neighbors(v))
            alive += app.inCore()[u];
        EXPECT_GE(alive, 3u) << v;
    }
}

TEST(Kcore, HighKRemovesEverything)
{
    graph::CsrGraph g = graph::randomGraph(300, 4.0, 11);
    runtime::Machine m(cfg(2));
    g.assignAddresses(m.alloc);
    apps::KcoreApp app(&g, 1000, 1u << 30);
    worklist::ObimWorklist wl(&m, 2, 16, 1);
    galois::RunConfig rc;
    rc.threads = 2;
    auto r = galois::runParallel(m, app, wl, rc);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(app.coreSize(), 0u);
}

TEST(Kcore, KZeroKeepsEverything)
{
    graph::CsrGraph g = graph::randomGraph(300, 4.0, 11);
    runtime::Machine m(cfg(2));
    g.assignAddresses(m.alloc);
    apps::KcoreApp app(&g, 0, 1u << 30);
    worklist::ObimWorklist wl(&m, 2, 16, 1);
    galois::RunConfig rc;
    rc.threads = 2;
    auto r = galois::runParallel(m, app, wl, rc);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(app.coreSize(), std::uint64_t(g.numNodes()));
}

TEST(ExtHarness, MisAndKcoreRunUnderMinnowPf)
{
    for (const char *name : {"mis", "kcore"}) {
        Workload w = makeWorkload(name, 0.05, 3);
        RunSpec spec;
        spec.config = Config::MinnowPf;
        spec.threads = 4;
        spec.machine.numCores = 4;
        auto r = runExperiment(w, spec);
        EXPECT_FALSE(r.run.timedOut) << name;
        EXPECT_TRUE(r.run.verified) << name;
    }
}

TEST(ExtHarness, MinnowSpeedsUpMis)
{
    Workload w = makeWorkload("mis", 0.5, 3);
    RunSpec sw;
    sw.config = Config::Obim;
    sw.threads = 16;
    sw.machine.numCores = 16;
    auto base = runExperiment(w, sw);
    RunSpec hw;
    hw.config = Config::MinnowPf;
    hw.threads = 16;
    hw.machine.numCores = 16;
    auto mn = runExperiment(w, hw);
    ASSERT_TRUE(base.run.verified);
    ASSERT_TRUE(mn.run.verified);
    EXPECT_LT(mn.run.cycles, base.run.cycles);
}

} // anonymous namespace
} // namespace minnow
