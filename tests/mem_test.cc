/**
 * @file
 * Unit tests for the memory hierarchy: cache arrays, NoC, DRAM,
 * coherence directory behaviour, prefetch-bit/credit plumbing, and
 * the stride/IMP prefetchers.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/memory_system.hh"
#include "mem/noc.hh"
#include "mem/prefetcher.hh"
#include "sim/config.hh"

namespace minnow::mem
{
namespace
{

CacheParams
tinyCache(std::uint64_t bytes, std::uint32_t assoc,
          std::uint32_t latency)
{
    return CacheParams{bytes, assoc, latency};
}

TEST(CacheArray, HitAfterFill)
{
    CacheArray c(tinyCache(4096, 4, 1)); // 16 sets.
    Eviction ev;
    c.fill(100, false, ev);
    EXPECT_FALSE(ev.valid);
    EXPECT_NE(c.lookup(100), nullptr);
    EXPECT_EQ(c.lookup(101), nullptr);
}

TEST(CacheArray, LruEviction)
{
    CacheArray c(tinyCache(2 * 64 * 4, 2, 1)); // 4 sets, 2 ways.
    Eviction ev;
    // Three lines in the same set (set index = lnum & 3).
    c.fill(0, false, ev);
    c.fill(4, false, ev);
    EXPECT_NE(c.lookup(0), nullptr); // touch 0 so 4 is LRU.
    c.fill(8, false, ev);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineNum, 4u);
    EXPECT_NE(c.probe(0), nullptr);
    EXPECT_EQ(c.probe(4), nullptr);
    EXPECT_NE(c.probe(8), nullptr);
}

TEST(CacheArray, EvictionReportsDirtyAndPrefetch)
{
    CacheArray c(tinyCache(64 * 1, 1, 1)); // 1 set, 1 way.
    Eviction ev;
    CacheLine *line = c.fill(7, true, ev);
    line->dirty = true;
    c.fill(9, false, ev);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineNum, 7u);
    EXPECT_TRUE(ev.dirty);
    EXPECT_TRUE(ev.prefetch);
}

TEST(CacheArray, InvalidateAndFlush)
{
    CacheArray c(tinyCache(4096, 4, 1));
    Eviction ev;
    c.fill(5, false, ev);
    EXPECT_TRUE(c.invalidate(5));
    EXPECT_FALSE(c.invalidate(5));
    c.fill(6, false, ev);
    c.fill(7, false, ev);
    EXPECT_EQ(c.validLines(), 2u);
    c.flushAll();
    EXPECT_EQ(c.validLines(), 0u);
}

TEST(Noc, IdleLatency)
{
    NocParams p;
    Noc noc(p);
    EXPECT_EQ(noc.hops(0, 0), 0u);
    EXPECT_EQ(noc.hops(0, 7), 7u);   // across the top row.
    EXPECT_EQ(noc.hops(0, 63), 14u); // opposite corner.
    EXPECT_EQ(noc.idleLatency(0, 63), 42u);
}

TEST(Noc, TraverseAddsHops)
{
    NocParams p;
    Noc noc(p);
    Cycle t = noc.traverse(0, 9, 100); // 1 east + 1 south = 2 hops.
    EXPECT_EQ(t, 100u + 2 * p.cyclesPerHop);
    EXPECT_EQ(noc.messages(), 1u);
    EXPECT_EQ(noc.totalHops(), 2u);
}

TEST(Noc, ContentionDelays)
{
    NocParams p;
    Noc noc(p);
    // The link meters one flit per cycle per window; saturating a
    // window pushes later messages into the next one.
    Cycle t1 = noc.traverse(0, 1, 0);
    EXPECT_EQ(t1, Cycle(p.cyclesPerHop));
    Cycle worst = t1;
    for (int i = 0; i < 200; ++i)
        worst = std::max(worst, noc.traverse(0, 1, 0));
    EXPECT_GT(worst, t1);
    EXPECT_GT(noc.contentionCycles(), 0u);
}

TEST(Dram, LatencyAndBandwidth)
{
    DramParams p;
    p.channels = 1;
    Dram dram(p);
    Cycle t1 = dram.access(0, 0);
    EXPECT_GE(t1, Cycle(p.accessLatency));
    // Saturate the single channel: the per-window capacity fills and
    // later transfers slide into later windows.
    Cycle worst = t1;
    for (int i = 1; i < 128; ++i)
        worst = std::max(worst, dram.access(Addr(i), 0));
    EXPECT_GT(worst, t1);
    EXPECT_GT(dram.queueCycles(), 0u);
}

TEST(Dram, MoreChannelsLessQueueing)
{
    DramParams one;
    one.channels = 1;
    DramParams many;
    many.channels = 12;
    Dram d1(one), d12(many);
    Cycle worst1 = 0, worst12 = 0;
    for (int i = 0; i < 512; ++i) {
        worst1 = std::max(worst1, d1.access(Addr(i), 0));
        worst12 = std::max(worst12, d12.access(Addr(i), 0));
    }
    EXPECT_GT(worst1, worst12);
}

MachineConfig
tinyMachine(std::uint32_t cores = 4)
{
    MachineConfig m = scaledMachine();
    m.numCores = cores;
    m.validate();
    return m;
}

TEST(MemorySystem, ColdMissThenHits)
{
    MachineConfig cfg = tinyMachine();
    MemorySystem ms(cfg);
    MemAccess req;
    req.addr = 0x10000;
    req.core = 1;
    req.when = 0;

    AccessResult r1 = ms.access(req);
    EXPECT_EQ(r1.level, HitLevel::Mem);
    EXPECT_TRUE(ms.inL1(1, req.addr));
    EXPECT_TRUE(ms.inL2(1, req.addr));
    EXPECT_TRUE(ms.inL3(req.addr));

    req.when = r1.done;
    AccessResult r2 = ms.access(req);
    EXPECT_EQ(r2.level, HitLevel::L1);
    EXPECT_EQ(r2.done, r1.done + cfg.l1d.latency);
}

TEST(MemorySystem, SecondCoreHitsL3)
{
    MachineConfig cfg = tinyMachine();
    MemorySystem ms(cfg);
    MemAccess req;
    req.addr = 0x40000;
    req.core = 0;
    AccessResult r1 = ms.access(req);
    req.core = 2;
    req.when = r1.done;
    AccessResult r2 = ms.access(req);
    EXPECT_EQ(r2.level, HitLevel::L3);
    EXPECT_LT(r2.done - r1.done, r1.done); // far cheaper than DRAM.
}

TEST(MemorySystem, WriteInvalidatesSharers)
{
    MachineConfig cfg = tinyMachine();
    MemorySystem ms(cfg);
    Addr addr = 0x80000;

    MemAccess load;
    load.addr = addr;
    load.core = 0;
    ms.access(load);
    load.core = 1;
    ms.access(load);
    EXPECT_TRUE(ms.inL2(0, addr));
    EXPECT_TRUE(ms.inL2(1, addr));

    MemAccess store;
    store.addr = addr;
    store.type = AccessType::Store;
    store.core = 2;
    ms.access(store);
    EXPECT_FALSE(ms.inL2(0, addr));
    EXPECT_FALSE(ms.inL2(1, addr));
    EXPECT_TRUE(ms.inL2(2, addr));
    EXPECT_EQ(ms.stats(2).invalidationsSent, 2u);
}

TEST(MemorySystem, StoreThenRemoteReadSeesIntervention)
{
    MachineConfig cfg = tinyMachine();
    MemorySystem ms(cfg);
    Addr addr = 0x90000;

    MemAccess store;
    store.addr = addr;
    store.type = AccessType::Store;
    store.core = 3;
    ms.access(store);

    MemAccess load;
    load.addr = addr;
    load.core = 0;
    AccessResult r = ms.access(load);
    EXPECT_EQ(r.level, HitLevel::L3);
    EXPECT_EQ(ms.stats(3).writebacks, 1u);
    // Both now share the line; core 3's copy is no longer exclusive,
    // so another store by 3 must upgrade (invalidating core 0).
    ms.access(store);
    EXPECT_FALSE(ms.inL2(0, addr));
}

TEST(MemorySystem, AtomicCostsMoreThanLoad)
{
    MachineConfig cfg = tinyMachine();
    MemorySystem ms(cfg);
    MemAccess a;
    a.addr = 0xA0000;
    a.core = 0;
    AccessResult warm = ms.access(a); // warm the line.
    a.when = warm.done;
    AccessResult asLoad = ms.access(a);
    MemAccess rmw = a;
    rmw.addr = 0xB0000;
    ms.access(rmw); // warm.
    rmw.type = AccessType::Atomic;
    rmw.when = warm.done;
    AccessResult asAtomic = ms.access(rmw);
    EXPECT_GT(asAtomic.done - rmw.when, asLoad.done - a.when);
}

TEST(MemorySystem, PrefetchFillMarksLineAndCreditFlows)
{
    MachineConfig cfg = tinyMachine();
    MemorySystem ms(cfg);
    int creditsBack = 0;
    bool lastUsed = false;
    ms.setCreditHook([&](CoreId, bool used) {
        ++creditsBack;
        lastUsed = used;
    });

    MemAccess pf;
    pf.addr = 0xC0000;
    pf.core = 0;
    pf.engine = true;
    pf.prefetch = true;
    AccessResult r = ms.access(pf);
    EXPECT_TRUE(r.prefetchFilled);
    EXPECT_TRUE(ms.inL2(0, pf.addr));
    EXPECT_FALSE(ms.inL1(0, pf.addr));
    EXPECT_EQ(creditsBack, 0);

    // Demand access consumes the prefetch: credit returns as "used".
    MemAccess demand;
    demand.addr = pf.addr;
    demand.core = 0;
    demand.when = r.done;
    AccessResult d = ms.access(demand);
    EXPECT_EQ(d.level, HitLevel::L2);
    EXPECT_TRUE(d.hitPrefetched);
    EXPECT_EQ(creditsBack, 1);
    EXPECT_TRUE(lastUsed);
    EXPECT_EQ(ms.stats(0).prefetchUsed, 1u);
}

TEST(MemorySystem, LatePrefetchDelaysDemandHit)
{
    MachineConfig cfg = tinyMachine();
    MemorySystem ms(cfg);
    MemAccess pf;
    pf.addr = 0xD0000;
    pf.core = 0;
    pf.engine = true;
    pf.prefetch = true;
    AccessResult r = ms.access(pf); // in flight until r.done.

    MemAccess demand;
    demand.addr = pf.addr;
    demand.core = 0;
    demand.when = 1; // long before the fill lands.
    AccessResult d = ms.access(demand);
    EXPECT_EQ(d.level, HitLevel::L2);
    EXPECT_GE(d.done, r.done);
    EXPECT_EQ(ms.stats(0).prefetchUsedLate, 1u);
}

TEST(MemorySystem, UnusedPrefetchEvictionReturnsCredit)
{
    MachineConfig cfg = tinyMachine();
    // Shrink L2 to one set x assoc lines so eviction is easy.
    cfg.l2.sizeBytes = 8 * kLineBytes;
    cfg.l2.assoc = 8;
    cfg.l1d.sizeBytes = 8 * kLineBytes;
    cfg.l1d.assoc = 8;
    MemorySystem ms(cfg);
    int unusedBack = 0;
    ms.setCreditHook([&](CoreId, bool used) {
        if (!used)
            ++unusedBack;
    });

    MemAccess pf;
    pf.core = 0;
    pf.engine = true;
    pf.prefetch = true;
    pf.addr = 0x100000;
    ms.access(pf);

    // Flood the (single-set) L2 with demand lines to evict it.
    MemAccess demand;
    demand.core = 0;
    for (int i = 1; i <= 8; ++i) {
        demand.addr = 0x100000 + Addr(i) * kLineBytes;
        ms.access(demand);
    }
    EXPECT_EQ(unusedBack, 1);
    EXPECT_EQ(ms.stats(0).prefetchEvictedUnused, 1u);
}

TEST(MemorySystem, DemandMissCountsOnlyDemand)
{
    MachineConfig cfg = tinyMachine();
    MemorySystem ms(cfg);
    MemAccess pf;
    pf.core = 0;
    pf.engine = true;
    pf.prefetch = true;
    pf.addr = 0x200000;
    ms.access(pf);
    EXPECT_EQ(ms.stats(0).l2DemandMisses, 0u);
    MemAccess demand;
    demand.core = 0;
    demand.addr = 0x300000;
    ms.access(demand);
    EXPECT_EQ(ms.stats(0).l2DemandMisses, 1u);
}

TEST(MemorySystem, FlushDropsEverything)
{
    MachineConfig cfg = tinyMachine();
    MemorySystem ms(cfg);
    MemAccess a;
    a.core = 0;
    a.addr = 0x400000;
    ms.access(a);
    EXPECT_TRUE(ms.inL2(0, a.addr));
    ms.flushAll();
    EXPECT_FALSE(ms.inL1(0, a.addr));
    EXPECT_FALSE(ms.inL2(0, a.addr));
    EXPECT_FALSE(ms.inL3(a.addr));
}

TEST(StridePf, DetectsStreamAfterTraining)
{
    StridePrefetcher pf(4, 1);
    std::vector<Addr> out;
    LoadObservation obs;
    obs.site = 3;
    for (int i = 0; i < 3; ++i) {
        obs.addr = 0x1000 + Addr(i) * 64;
        pf.observe(obs, out);
    }
    EXPECT_TRUE(out.empty()); // still training.
    obs.addr = 0x1000 + 3 * 64;
    pf.observe(obs, out);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0], lineAddr(0x1000 + 7 * 64));
}

TEST(StridePf, ZeroStrideDoesNotKillLearnedStream)
{
    // Regression: a repeated address (flag poll between worklist
    // items) used to overwrite the learned stride with 0, silently
    // killing the stream even though its confidence survived.
    StridePrefetcher pf(4, 1);
    std::vector<Addr> out;
    LoadObservation obs;
    obs.site = 3;
    for (int i = 0; i < 4; ++i) {
        obs.addr = 0x1000 + Addr(i) * 64;
        pf.observe(obs, out);
    }
    ASSERT_FALSE(out.empty()); // trained and issuing.
    out.clear();

    // Re-reference the same address twice: stride 0 observations.
    pf.observe(obs, out);
    pf.observe(obs, out);
    out.clear();

    // The next in-stride access must still prefetch.
    obs.addr = 0x1000 + 4 * 64;
    pf.observe(obs, out);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0], lineAddr(0x1000 + 8 * 64));
}

TEST(StridePf, IgnoresRandomAccesses)
{
    StridePrefetcher pf(4, 1);
    std::vector<Addr> out;
    LoadObservation obs;
    obs.site = 1;
    Addr addrs[] = {0x100, 0x9000, 0x330, 0x71000, 0x4500};
    for (Addr a : addrs) {
        obs.addr = a;
        pf.observe(obs, out);
    }
    EXPECT_TRUE(out.empty());
}

TEST(ImpPf, LearnsIndirectPattern)
{
    // Functional "memory": B[i] = permutation values; A = node array
    // at base 0x100000 with 32-byte elements (shift 5).
    constexpr Addr kIndexBase = 0x1000;
    constexpr Addr kTargetBase = 0x100000;
    std::vector<std::uint64_t> indexArray = {5, 9, 2, 14, 7, 11, 3, 8,
                                             1, 12, 6, 0, 13, 4, 10, 15};
    auto oracle = [&](Addr a, std::uint64_t &v) {
        if (a >= kIndexBase &&
            a < kIndexBase + indexArray.size() * 8 && (a % 8) == 0) {
            v = indexArray[(a - kIndexBase) / 8];
            return true;
        }
        return false;
    };
    ImpPrefetcher pf(oracle, 4);
    std::vector<Addr> out;

    // Interleaved stream: load B[i] (site 1, with value), then load
    // A[B[i]] (site 2) — the A[B[i]] access pattern of the paper.
    for (std::size_t i = 0; i < indexArray.size(); ++i) {
        LoadObservation idx;
        idx.site = 1;
        idx.addr = kIndexBase + Addr(i) * 8;
        idx.value = indexArray[i];
        idx.hasValue = true;
        pf.observe(idx, out);

        LoadObservation ind;
        ind.site = 2;
        ind.addr = kTargetBase + Addr(indexArray[i] << 5);
        pf.observe(ind, out);
    }
    EXPECT_GE(pf.patternsLearned(), 1u);
    // After training, prefetches must include indirect targets
    // A[B[i+4]] for some future i.
    bool sawIndirect = false;
    for (Addr a : out) {
        if (a >= kTargetBase)
            sawIndirect = true;
    }
    EXPECT_TRUE(sawIndirect);
}

TEST(ImpPf, NoOracleNoIndirect)
{
    ImpPrefetcher pf(nullptr, 4);
    std::vector<Addr> out;
    for (int i = 0; i < 16; ++i) {
        LoadObservation idx;
        idx.site = 1;
        idx.addr = 0x1000 + Addr(i) * 8;
        idx.value = std::uint64_t(i * 3 % 16);
        idx.hasValue = true;
        pf.observe(idx, out);
    }
    for (Addr a : out)
        EXPECT_LT(a, Addr(0x100000)); // stream-aheads only.
}

} // anonymous namespace
} // namespace minnow::mem
