/**
 * @file
 * Timing-wheel EventQueue tests: the deterministic (when, seq)
 * ordering contract across the bucket/overflow boundary, far-future
 * (multi-wheel-rotation) events, schedule-during-resume, reset()
 * semantics, run() re-entrancy, and a byte-identical stats-JSON A/B
 * run of a real workload.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <queue>
#include <vector>

#include "harness/workloads.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"

namespace minnow
{
namespace
{

constexpr Cycle kHorizon = EventQueue::kWheelBuckets;

/** Tag-recording callback plumbing shared by the ordering tests. */
struct Recorder
{
    explicit Recorder(EventQueue *q) : eq(q) {}

    EventQueue *eq;
    std::vector<int> order;

    struct Node
    {
        Recorder *rec;
        int tag;
    };

    std::vector<Node *> nodes;

    ~Recorder()
    {
        for (Node *n : nodes)
            delete n;
    }

    void
    push(Cycle when, int tag)
    {
        Node *n = new Node{this, tag};
        nodes.push_back(n);
        eq->schedule(when, [](void *p) {
            auto *n = static_cast<Node *>(p);
            n->rec->order.push_back(n->tag);
        }, n);
    }
};

TEST(EventQueue, SameCycleFifoAcrossOverflowBoundary)
{
    // Events for one cycle can arrive via two paths: through the
    // overflow heap (scheduled while the cycle was beyond the wheel
    // horizon) and directly into a bucket (scheduled once it was
    // inside). Scheduling order must still be execution order.
    EventQueue eq;
    Recorder rec{&eq};

    const Cycle target = 5 * kHorizon; // far future at t=0
    rec.push(target, 1);               // overflow path
    rec.push(target, 2);               // overflow path, same cycle

    // A stepping event (itself far-future) that schedules two more
    // events at `target` once the clock sits inside the horizon.
    struct Step
    {
        Recorder *rec;
        Cycle target;
    } step{&rec, target};
    eq.schedule(target - 100, [](void *p) {
        auto *s = static_cast<Step *>(p);
        // target is now 100 cycles ahead: direct-bucket path.
        s->rec->push(s->target, 3);
        s->rec->push(s->target, 4);
    }, &step);

    eq.run();
    EXPECT_EQ(rec.order, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(eq.now(), target);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, FarFutureMultiRotationEvents)
{
    // Events several full wheel rotations apart execute in time
    // order, including the exact horizon boundary: now + horizon - 1
    // is the last bucketed cycle, now + horizon the first overflow
    // one.
    EventQueue eq;
    Recorder rec{&eq};

    rec.push(3 * kHorizon + 7, 5);
    rec.push(12 * kHorizon + 1, 6);
    rec.push(kHorizon, 3);     // first overflow cycle
    rec.push(kHorizon - 1, 2); // last direct-bucket cycle
    rec.push(3, 1);
    rec.push(kHorizon + 1, 4);

    EXPECT_EQ(eq.headTime(), 3u);
    eq.run();
    EXPECT_EQ(rec.order, (std::vector<int>{1, 2, 3, 4, 5, 6}));
    EXPECT_EQ(eq.now(), 12 * kHorizon + 1);
}

TEST(EventQueue, ScheduleDuringResumeAtCurrentCycle)
{
    // An event that schedules at eq.now() runs the new event in the
    // same run, same cycle, after the events already queued there.
    EventQueue eq;
    Recorder rec{&eq};

    struct Spawner
    {
        Recorder *rec;
    } sp{&rec};
    eq.schedule(5, [](void *p) {
        auto *s = static_cast<Spawner *>(p);
        s->rec->order.push_back(1);
        s->rec->push(s->rec->eq->now(), 3); // same-cycle re-schedule
    }, &sp);
    rec.push(5, 2);

    eq.run();
    EXPECT_EQ(rec.order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueue, PendingExcludesExecutingEvent)
{
    // The stats sampler re-arms itself only when the queue is
    // non-empty; the event being executed must not count.
    EventQueue eq;
    struct Ctx
    {
        EventQueue *eq;
        bool sawEmpty = false;
    } ctx{&eq};
    eq.schedule(3, [](void *p) {
        auto *c = static_cast<Ctx *>(p);
        c->sawEmpty = c->eq->empty() && c->eq->pending() == 0;
    }, &ctx);
    eq.run();
    EXPECT_TRUE(ctx.sawEmpty);
}

TEST(EventQueue, ResetClearsStateAndDiagnosticHook)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [](void *p) { (*static_cast<int *>(p))++; },
                &fired);
    int diags = 0;
    eq.setDiagnosticHook(
        [&diags](const char *) { ++diags; });
    eq.run();
    ASSERT_EQ(fired, 1);

    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.stopped());
    EXPECT_EQ(eq.headTime(), 0u);

    // The hook was cleared by reset(): a budget-exhausted run after
    // reset must not fire the stale hook.
    for (Cycle t = 1; t <= 3; ++t)
        eq.schedule(t, [](void *p) { (*static_cast<int *>(p))++; },
                    &fired);
    clearWarnings();
    EXPECT_EQ(eq.run(2), 2u);
    EXPECT_TRUE(warningsSeen()); // the budget warn itself remains
    clearWarnings();
    EXPECT_EQ(diags, 0);

    eq.run(); // drain the leftover event so the queue ends empty
    EXPECT_EQ(fired, 4);
}

TEST(EventQueueDeathTest, ResetWithPendingEventsPanics)
{
    EXPECT_EXIT(
        {
            EventQueue eq;
            eq.schedule(1, [](void *) {}, nullptr);
            eq.reset();
        },
        testing::KilledBySignal(SIGABRT), "non-empty event queue");
}

TEST(EventQueueDeathTest, RunReentrancyPanics)
{
    EXPECT_EXIT(
        {
            EventQueue eq;
            eq.schedule(1, [](void *p) {
                static_cast<EventQueue *>(p)->run();
            }, &eq);
            eq.run();
        },
        testing::KilledBySignal(SIGABRT), "re-entered");
}

TEST(EventQueue, StopMidBucketPreservesRemainingSameCycleEvents)
{
    // stop() between two same-cycle events: the second survives in
    // the middle of its bucket and runs on the next run() call, and
    // headTime() reports the current cycle meanwhile.
    EventQueue eq;
    Recorder rec{&eq};
    struct Stopper
    {
        Recorder *rec;
    } st{&rec};
    eq.schedule(4, [](void *p) {
        auto *s = static_cast<Stopper *>(p);
        s->rec->order.push_back(1);
        s->rec->eq->stop();
    }, &st);
    rec.push(4, 2);

    eq.run();
    EXPECT_EQ(rec.order, (std::vector<int>{1}));
    EXPECT_TRUE(eq.stopped());
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_EQ(eq.headTime(), 4u);

    eq.run();
    EXPECT_EQ(rec.order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.now(), 4u);
}

/**
 * Self-rearming periodic daemon (the stats/timeline samplers and the
 * watchdog in miniature), following the documented protocol:
 * daemonScheduled() on arm, daemonFired() first thing in the
 * handler, re-arm only while quiescent() is false.
 */
struct PeriodicDaemon
{
    EventQueue *eq;
    Cycle interval;
    std::uint64_t fires = 0;

    void
    arm()
    {
        eq->daemonScheduled();
        eq->schedule(eq->now() + interval, &PeriodicDaemon::fire,
                     this);
    }

    static void
    fire(void *p)
    {
        auto *d = static_cast<PeriodicDaemon *>(p);
        d->eq->daemonFired();
        d->fires += 1;
        if (!d->eq->quiescent())
            d->arm();
    }
};

TEST(EventQueue, MutuallyRearmingDaemonsDoNotKeepQueueAlive)
{
    // Two periodic daemons plus a finite chain of real events:
    // run() must drain once the real work is gone. With a plain
    // !empty() re-arm test the daemons would keep each other alive
    // forever (the --stats-interval + --timeline hang).
    EventQueue eq;
    PeriodicDaemon a{&eq, 10};
    PeriodicDaemon b{&eq, 15};
    a.arm();
    b.arm();
    EXPECT_TRUE(eq.quiescent());

    struct Chain
    {
        EventQueue *eq;
        int left;

        static void
        step(void *p)
        {
            auto *c = static_cast<Chain *>(p);
            if (--c->left > 0)
                c->eq->schedule(c->eq->now() + 40, &Chain::step, c);
        }
    } chain{&eq, 5};
    eq.schedule(40, &Chain::step, &chain);
    EXPECT_FALSE(eq.quiescent());

    std::uint64_t executed = eq.run();
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.stopped());
    // Real work ended at cycle 200; the daemons must have stopped
    // within one interval of that instead of running forever.
    EXPECT_LE(eq.now(), 215u);
    EXPECT_GE(a.fires, 1u);
    EXPECT_LE(a.fires, 25u);
    EXPECT_LE(b.fires, 18u);
    EXPECT_LT(executed, 60u);
}

/**
 * Property test: the wheel's execution order must equal a reference
 * binary heap ordered by (when, seq) — the pre-wheel implementation
 * — on a deterministic pseudo-random schedule whose offsets straddle
 * the horizon, including events spawned during execution.
 */
TEST(EventQueue, OrderMatchesReferenceHeapOnRandomSchedule)
{
    constexpr int kInitial = 400;

    // Deterministic LCG so both sims see identical schedules.
    auto lcgNext = [](std::uint64_t &s) {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        return std::uint32_t(s >> 33);
    };

    // Offsets spanning well past the horizon, with heavy same-cycle
    // collisions (mod 97) mixed in.
    auto offsetOf = [&lcgNext](std::uint64_t &s) {
        std::uint32_t r = lcgNext(s);
        switch (r % 4) {
          case 0: return Cycle(r % 97);             // near, colliding
          case 1: return Cycle(r % (kHorizon - 1)); // in-wheel
          case 2: return Cycle(kHorizon + r % 64);  // just overflow
          default: return Cycle(r % (6 * kHorizon));
        }
    };

    // --- Wheel run ---
    std::vector<int> wheelOrder;
    {
        EventQueue eq;
        struct Node
        {
            EventQueue *eq;
            std::vector<int> *order;
            std::uint64_t rng;
            int id;
            bool spawns;
        };
        std::vector<Node *> nodes;
        auto schedule = [&](Cycle when, int id, std::uint64_t rng,
                            bool spawns) {
            Node *n = new Node{&eq, &wheelOrder, rng, id, spawns};
            nodes.push_back(n);
            eq.schedule(when, [](void *p) {
                auto *n = static_cast<Node *>(p);
                n->order->push_back(n->id);
                if (n->spawns) {
                    // Children re-use the node machinery; ids are
                    // offset so divergence is visible immediately.
                    std::uint64_t s = n->rng;
                    auto *c = new Node{n->eq, n->order, 0,
                                       n->id + 100000, false};
                    Cycle off =
                        Cycle((s >> 17) % (2 * kHorizon));
                    n->eq->schedule(n->eq->now() + off,
                                    [](void *q) {
                        auto *c = static_cast<Node *>(q);
                        c->order->push_back(c->id);
                        delete c;
                    }, c);
                }
            }, n);
        };
        std::uint64_t rng = 12345;
        for (int i = 0; i < kInitial; ++i) {
            Cycle off = offsetOf(rng);
            schedule(off, i, rng, i % 3 == 0);
        }
        eq.run();
        for (Node *n : nodes)
            delete n;
    }

    // --- Reference heap run (the old implementation's contract) ---
    std::vector<int> refOrder;
    {
        struct Ev
        {
            Cycle when;
            std::uint64_t seq;
            std::uint64_t rng;
            int id;
            bool spawns;
            bool
            operator>(const Ev &o) const
            {
                if (when != o.when)
                    return when > o.when;
                return seq > o.seq;
            }
        };
        std::priority_queue<Ev, std::vector<Ev>, std::greater<>>
            heap;
        std::uint64_t seq = 0;
        std::uint64_t rng = 12345;
        for (int i = 0; i < kInitial; ++i) {
            Cycle off = offsetOf(rng);
            heap.push(Ev{off, seq++, rng, i, i % 3 == 0});
        }
        while (!heap.empty()) {
            Ev ev = heap.top();
            heap.pop();
            refOrder.push_back(ev.id);
            if (ev.spawns) {
                std::uint64_t s = ev.rng;
                Cycle off = Cycle((s >> 17) % (2 * kHorizon));
                heap.push(Ev{ev.when + off, seq++, 0,
                             ev.id + 100000, false});
            }
        }
    }

    ASSERT_EQ(wheelOrder.size(), refOrder.size());
    EXPECT_EQ(wheelOrder, refOrder);
}

/**
 * A/B determinism at workload level: two fresh runs of the same
 * seeded experiment must produce byte-identical stats JSON — the
 * same end-to-end guarantee the old binary-heap queue provided
 * (PR 2's determinism contract).
 */
TEST(EventQueue, WorkloadStatsJsonByteIdenticalAcrossRuns)
{
    auto runOnce = [] {
        harness::Workload w =
            harness::makeWorkload("sssp", 0.05, 7);
        harness::RunSpec spec;
        spec.config = harness::Config::MinnowPf;
        spec.threads = 4;
        spec.machine.numCores = 4;
        auto r = harness::runExperiment(w, spec);
        EXPECT_TRUE(r.run.verified);
        return r.run.statsJson;
    };
    std::string a = runOnce();
    std::string b = runOnce();
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

} // anonymous namespace
} // namespace minnow
