/**
 * @file
 * Additional memory-system tests: the windowed bandwidth meter
 * (out-of-order arrival robustness — the property that motivated
 * it), per-line atomic serialization, and flush/reset behaviour.
 */

#include <gtest/gtest.h>

#include "mem/bandwidth.hh"
#include "mem/memory_system.hh"
#include "sim/config.hh"

namespace minnow::mem
{
namespace
{

TEST(BandwidthMeter, PassThroughWhenIdle)
{
    BandwidthMeter<5, 8> meter(4);
    EXPECT_EQ(meter.reserve(100), 100u);
    EXPECT_EQ(meter.reserve(100), 100u);
}

TEST(BandwidthMeter, OverflowSlidesToNextWindow)
{
    BandwidthMeter<5, 8> meter(2); // 2 per 32-cycle window.
    EXPECT_EQ(meter.reserve(0), 0u);
    EXPECT_EQ(meter.reserve(0), 0u);
    // Third and fourth land in the next window (starts at 32).
    EXPECT_EQ(meter.reserve(0), 32u);
    EXPECT_EQ(meter.reserve(0), 32u);
    EXPECT_EQ(meter.reserve(0), 64u);
}

TEST(BandwidthMeter, FarFutureBookingDoesNotBlockNearTerm)
{
    // The regression that killed the next-free-cursor model: a
    // request far in the future must not delay near-term requests.
    BandwidthMeter<5, 8> meter(1);
    EXPECT_EQ(meter.reserve(100000), 100000u);
    EXPECT_EQ(meter.reserve(100016), 100032u); // same window: slides.
    // A later-arriving near-term request books its own window.
    // (Slots recycle by epoch, so the frontier may move; what must
    // hold is that it is not pushed past the far-future booking.)
    Cycle near = meter.reserve(100100);
    EXPECT_LT(near, 101000u);
}

TEST(BandwidthMeter, SaturationPenalty)
{
    BandwidthMeter<5, 4> meter(1); // 4 windows tracked.
    for (int i = 0; i < 4; ++i)
        meter.reserve(0);
    // Every tracked window is full: overload penalty applies.
    EXPECT_GE(meter.reserve(0), Cycle(4) * 32);
}

TEST(BandwidthMeter, CapacityQuery)
{
    BandwidthMeter<5, 8> meter(3);
    EXPECT_EQ(meter.usedInWindow(64), 0u);
    meter.reserve(64);
    meter.reserve(65);
    EXPECT_EQ(meter.usedInWindow(64), 2u);
}

TEST(AtomicSerialization, SameLineRmwsSerialize)
{
    MachineConfig cfg = scaledMachine();
    cfg.numCores = 4;
    MemorySystem ms(cfg);
    Addr line = 0x50000;
    // Warm the line on all cores via loads.
    for (CoreId c = 0; c < 4; ++c) {
        MemAccess warm;
        warm.addr = line;
        warm.core = c;
        ms.access(warm);
    }
    // Four concurrent atomics to one line: completions must be
    // strictly increasing even though all are issued at time 0.
    Cycle last = 0;
    for (CoreId c = 0; c < 4; ++c) {
        MemAccess rmw;
        rmw.addr = line;
        rmw.core = c;
        rmw.type = AccessType::Atomic;
        rmw.when = 1000;
        AccessResult r = ms.access(rmw);
        EXPECT_GT(r.done, last);
        last = r.done;
    }
}

TEST(AtomicSerialization, DistinctLinesDoNot)
{
    MachineConfig cfg = scaledMachine();
    cfg.numCores = 4;
    MemorySystem ms(cfg);
    // Warm four distinct lines.
    for (CoreId c = 0; c < 4; ++c) {
        MemAccess warm;
        warm.addr = 0x60000 + Addr(c) * 4096;
        warm.core = c;
        ms.access(warm);
    }
    Cycle first = 0;
    for (CoreId c = 0; c < 4; ++c) {
        MemAccess rmw;
        rmw.addr = 0x60000 + Addr(c) * 4096;
        rmw.core = c;
        rmw.type = AccessType::Atomic;
        rmw.when = 1000;
        AccessResult r = ms.access(rmw);
        if (c == 0)
            first = r.done;
        else
            EXPECT_EQ(r.done, first); // independent lines overlap.
    }
}

TEST(NonInclusiveL3, L3EvictionKeepsPrivateCopy)
{
    MachineConfig cfg = scaledMachine();
    cfg.numCores = 2;
    // Shrink L3 so it overflows long before the L2 does.
    cfg.l3Bank.sizeBytes = 8 * kLineBytes;
    cfg.l3Bank.assoc = 8;
    MemorySystem ms(cfg);
    Addr first = 0x100000;
    MemAccess a;
    a.core = 0;
    a.addr = first;
    ms.access(a);
    EXPECT_TRUE(ms.inL2(0, first));
    // Flood the L3 with other lines from core 1.
    for (int i = 1; i <= 64; ++i) {
        MemAccess b;
        b.core = 1;
        b.addr = first + Addr(i) * 4096;
        ms.access(b);
    }
    // The line fell out of the (tiny) L3 but core 0 keeps its copy:
    // non-inclusive hierarchies do not back-invalidate.
    EXPECT_TRUE(ms.inL2(0, first));
}

TEST(NonInclusiveL3, RemoteDirtyForwardsWithoutL3Copy)
{
    MachineConfig cfg = scaledMachine();
    cfg.numCores = 2;
    cfg.l3Bank.sizeBytes = 8 * kLineBytes;
    cfg.l3Bank.assoc = 8;
    MemorySystem ms(cfg);
    Addr addr = 0x200000;
    MemAccess store;
    store.core = 0;
    store.addr = addr;
    store.type = AccessType::Store;
    ms.access(store);
    // Push the line out of L3 (dirty data stays in core 0's L2).
    for (int i = 1; i <= 64; ++i) {
        MemAccess b;
        b.core = 1;
        b.addr = addr + Addr(i) * 4096;
        ms.access(b);
    }
    // Core 1 reads it: must be served by cache-to-cache forwarding
    // (counted as an L3-level hit), not DRAM.
    MemAccess load;
    load.core = 1;
    load.addr = addr;
    std::uint64_t memBefore = ms.stats(1).memAccesses;
    AccessResult r = ms.access(load);
    EXPECT_EQ(r.level, HitLevel::L3);
    EXPECT_EQ(ms.stats(1).memAccesses, memBefore);
}

} // anonymous namespace
} // namespace minnow::mem
