/**
 * @file
 * Tests for the debug-trace facility and the remaining engine ISA
 * surface: minnow_flush, plus CLI/IO error-path death tests.
 */

#include <gtest/gtest.h>

#include "apps/sssp.hh"
#include "base/options.hh"
#include "base/trace.hh"
#include "graph/generators.hh"
#include "graph/io.hh"
#include "minnow/minnow_system.hh"
#include "runtime/machine.hh"

namespace minnow
{
namespace
{

TEST(Trace, EnableDisable)
{
    trace::clearAll();
    EXPECT_FALSE(trace::enabled(trace::Flag::Cache));
    trace::enable("Cache");
    EXPECT_TRUE(trace::enabled(trace::Flag::Cache));
    EXPECT_FALSE(trace::enabled(trace::Flag::Engine));
    trace::enableList("Engine,Credit");
    EXPECT_TRUE(trace::enabled(trace::Flag::Engine));
    EXPECT_TRUE(trace::enabled(trace::Flag::Credit));
    trace::clearAll();
    EXPECT_FALSE(trace::enabled(trace::Flag::Engine));
}

TEST(Trace, EnableListTrimsWhitespace)
{
    // Regression: "Exec, Cache" (the natural way to quote a pair of
    // flags) used to die on the padded token " Cache".
    trace::clearAll();
    trace::enableList("Exec, Cache");
    EXPECT_TRUE(trace::enabled(trace::Flag::Exec));
    EXPECT_TRUE(trace::enabled(trace::Flag::Cache));

    trace::clearAll();
    trace::enableList("  Engine ,\tCredit , ");
    EXPECT_TRUE(trace::enabled(trace::Flag::Engine));
    EXPECT_TRUE(trace::enabled(trace::Flag::Credit));
    trace::clearAll();
}

TEST(Trace, EmptyListIsNoop)
{
    trace::clearAll();
    trace::enableList("");
    for (auto f : {trace::Flag::Exec, trace::Flag::Cache,
                   trace::Flag::Engine})
        EXPECT_FALSE(trace::enabled(f));
}

TEST(TraceDeath, UnknownFlagIsFatal)
{
    EXPECT_EXIT(trace::enable("NoSuchFlag"),
                testing::ExitedWithCode(1), "unknown debug flag");
}

TEST(OptionsDeath, UnknownOptionRejected)
{
    Options opts({"--definitely-a-typo=1"});
    EXPECT_EXIT(opts.rejectUnused(), testing::ExitedWithCode(1),
                "unknown option");
}

TEST(OptionsDeath, MalformedIntIsFatal)
{
    Options opts({"--n=abc"});
    EXPECT_EXIT(opts.getInt("n", 0), testing::ExitedWithCode(1),
                "not an integer");
}

TEST(IoDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(graph::readDimacs("/nonexistent/file.gr"),
                testing::ExitedWithCode(1), "cannot open");
}

TEST(IoDeath, NotABinaryGraphIsFatal)
{
    std::string path = testing::TempDir() + "/notagraph.bin";
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "this is not a graph file at all............");
    std::fclose(f);
    EXPECT_EXIT(graph::readBinary(path), testing::ExitedWithCode(1),
                "not a minnow binary graph");
    std::remove(path.c_str());
}

TEST(EngineFlush, SpillsLocalQueueToGlobal)
{
    MachineConfig cfg = scaledMachine();
    cfg.numCores = 2;
    cfg.minnow.enabled = true;
    runtime::Machine m(cfg);
    m.monitor.reset(1);
    minnowengine::MinnowGlobalQueue q(&m.alloc, 3);
    minnowengine::PrefetchProgram prog;
    minnowengine::MinnowEngine eng(&m, 0, &q, prog);
    eng.startDaemon();
    runtime::SimContext ctx(&m, 0);

    auto driver = [](runtime::SimContext &ctx,
                     minnowengine::MinnowEngine &eng,
                     minnowengine::MinnowGlobalQueue &q)
        -> runtime::CoTask<void> {
        for (int i = 0; i < 8; ++i)
            co_await eng.enqueue(ctx, {0, std::uint64_t(i)});
        co_await ctx.waitUntil(ctx.eq().now() + 2000);
        std::uint32_t before = eng.localQueueSize();
        EXPECT_GT(before, 0u);
        // minnow_flush: core context switch spills everything.
        co_await eng.flush(ctx);
        co_await ctx.waitUntil(ctx.eq().now() + 5000);
        EXPECT_EQ(eng.localQueueSize() + std::uint32_t(q.size()),
                  8u);
        EXPECT_GE(q.size() + 0u, 0u);
        // Drain everything back through the normal protocol.
        int got = 0;
        for (;;) {
            auto item = co_await eng.dequeue(ctx);
            if (!item)
                break;
            ++got;
        }
        EXPECT_EQ(got, 8);
    };
    auto t = driver(ctx, eng, q);
    t.start();
    m.eq.run();
    ASSERT_TRUE(t.done());
    EXPECT_TRUE(m.monitor.terminated());
}

TEST(EngineFlush, TracingARunProducesOutput)
{
    // Smoke: run a small Minnow workload with Engine tracing on;
    // nothing to assert beyond "does not crash or slow to a crawl",
    // but it exercises every DPRINTF site.
    trace::enableList("Engine,Credit,Monitor");
    MachineConfig cfg = scaledMachine();
    cfg.numCores = 2;
    cfg.minnow.enabled = true;
    cfg.minnow.prefetchEnabled = true;
    runtime::Machine m(cfg);
    graph::CsrGraph g = graph::gridGraph(8, 8, 10, 1);
    g.assignAddresses(m.alloc);
    apps::SsspApp app(&g, 0, false, 1u << 30, "sssp");
    galois::RunConfig rc;
    rc.threads = 2;
    auto r = minnowengine::runMinnow(m, app, 3, rc);
    trace::clearAll();
    EXPECT_TRUE(r.verified);
}

} // anonymous namespace
} // namespace minnow
