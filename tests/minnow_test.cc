/**
 * @file
 * Tests for the Minnow engine stack: global queue spill/fill, engine
 * enqueue/dequeue protocol, credit throttling, deadlock-free
 * threadlet spawning, full-app runs under offload, and the headline
 * effects (worklist cycles shrink; prefetching slashes L2 MPKI).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/cc.hh"
#include "apps/pr.hh"
#include "apps/sssp.hh"
#include "apps/tc.hh"
#include "galois/executor.hh"
#include "graph/generators.hh"
#include "minnow/area.hh"
#include "minnow/engine.hh"
#include "minnow/global_queue.hh"
#include "minnow/minnow_system.hh"
#include "runtime/machine.hh"
#include "worklist/obim.hh"

namespace minnow::minnowengine
{
namespace
{

using galois::RunConfig;
using galois::RunResult;
using runtime::CoTask;
using runtime::Machine;
using runtime::SimContext;

MachineConfig
minnowConfig(std::uint32_t cores, bool prefetch)
{
    MachineConfig cfg = scaledMachine();
    cfg.numCores = cores;
    cfg.minnow.enabled = true;
    cfg.minnow.prefetchEnabled = prefetch;
    return cfg;
}

TEST(GlobalQueue, FunctionalSeedAndMinBucket)
{
    SimAlloc alloc;
    MinnowGlobalQueue q(&alloc, 2);
    EXPECT_EQ(q.minBucket(), MinnowGlobalQueue::kNoBucket);
    q.pushInitial({12, 1}); // bucket 3.
    q.pushInitial({4, 2});  // bucket 1.
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.minBucket(), 1);
}

TEST(Engine, EnqueueDequeueRoundTrip)
{
    Machine m(minnowConfig(2, false));
    m.monitor.reset(1);
    MinnowGlobalQueue q(&m.alloc, 3);
    PrefetchProgram prog; // no graph: prefetching off.
    MinnowEngine eng(&m, 0, &q, prog);
    SimContext ctx(&m, 0);

    auto driver = [](SimContext &ctx, MinnowEngine &eng,
                     std::vector<worklist::WorkItem> &out)
        -> CoTask<void> {
        co_await eng.enqueue(ctx, {5, 100});
        co_await eng.enqueue(ctx, {6, 101});
        for (int i = 0; i < 2; ++i) {
            auto item = co_await eng.dequeue(ctx);
            EXPECT_TRUE(item.has_value());
            if (!item)
                co_return;
            out.push_back(*item);
        }
        // Third dequeue: queue empty, worker idles, run terminates.
        auto item = co_await eng.dequeue(ctx);
        EXPECT_FALSE(item.has_value());
    };
    std::vector<worklist::WorkItem> got;
    CoTask<void> t = driver(ctx, eng, got);
    t.start();
    m.eq.run();
    ASSERT_TRUE(t.done());
    ASSERT_EQ(got.size(), 2u);
    // Local queue is FIFO.
    EXPECT_EQ(got[0].payload, 100u);
    EXPECT_EQ(got[1].payload, 101u);
    EXPECT_EQ(eng.stats().enqueues, 2u);
    EXPECT_TRUE(m.monitor.terminated());
}

TEST(Engine, LowerPriorityTaskSpills)
{
    Machine m(minnowConfig(2, false));
    m.monitor.reset(1);
    MinnowGlobalQueue q(&m.alloc, 0);
    PrefetchProgram prog;
    MinnowEngine eng(&m, 0, &q, prog);
    eng.startDaemon();
    SimContext ctx(&m, 0);

    auto driver = [](SimContext &ctx, MinnowEngine &eng,
                     MinnowGlobalQueue &q) -> CoTask<void> {
        co_await eng.enqueue(ctx, {1, 10}); // sets local bucket 1.
        co_await eng.enqueue(ctx, {9, 11}); // lower prio: spills.
        // Give the spill threadlet time to land; the fill daemon may
        // already have pulled it back (the local queue is below its
        // refill threshold), so the item is in one place or the other.
        co_await ctx.waitUntil(ctx.eq().now() + 5000);
        EXPECT_EQ(eng.localQueueSize() + q.size(), 2u);
        // Drain: local first, then the engine refills from global.
        auto a = co_await eng.dequeue(ctx);
        EXPECT_TRUE(a.has_value());
        if (!a)
            co_return;
        EXPECT_EQ(a->payload, 10u);
        auto b = co_await eng.dequeue(ctx);
        EXPECT_TRUE(b.has_value());
        if (!b)
            co_return;
        EXPECT_EQ(b->payload, 11u);
        auto c = co_await eng.dequeue(ctx);
        EXPECT_FALSE(c.has_value());
    };
    CoTask<void> t = driver(ctx, eng, q);
    t.start();
    m.eq.run();
    ASSERT_TRUE(t.done());
    EXPECT_GE(eng.stats().spillsSpawned, 1u);
    EXPECT_GE(eng.stats().fillBatches, 1u);
}

TEST(Engine, LocalQueueOverflowSpills)
{
    MachineConfig cfg = minnowConfig(2, false);
    cfg.minnow.localQueueEntries = 4;
    Machine m(cfg);
    m.monitor.reset(1);
    MinnowGlobalQueue q(&m.alloc, 3);
    PrefetchProgram prog;
    MinnowEngine eng(&m, 0, &q, prog);
    eng.startDaemon();
    SimContext ctx(&m, 0);

    auto driver = [](SimContext &ctx, MinnowEngine &eng)
        -> CoTask<void> {
        for (int i = 0; i < 10; ++i)
            co_await eng.enqueue(ctx, {0, std::uint64_t(i)});
        int got = 0;
        for (;;) {
            auto item = co_await eng.dequeue(ctx);
            if (!item)
                break;
            ++got;
        }
        EXPECT_EQ(got, 10);
    };
    CoTask<void> t = driver(ctx, eng);
    t.start();
    m.eq.run();
    ASSERT_TRUE(t.done());
    EXPECT_GE(eng.stats().spillsSpawned, 6u);
    EXPECT_TRUE(m.monitor.terminated());
}

TEST(Engine, BlockedDequeueIsDeliveredByFill)
{
    Machine m(minnowConfig(2, false));
    m.monitor.reset(2);
    MinnowGlobalQueue q(&m.alloc, 3);
    PrefetchProgram prog;
    MinnowEngine eng0(&m, 0, &q, prog);
    MinnowEngine eng1(&m, 1, &q, prog);
    eng0.startDaemon();
    eng1.startDaemon();
    m.monitor.subscribeTermination([&] { eng0.onTerminate(); });
    m.monitor.subscribeTermination([&] { eng1.onTerminate(); });
    SimContext c0(&m, 0), c1(&m, 1);

    // Worker 0 blocks first; worker 1 enqueues work that spills into
    // the global queue and must be delivered to worker 0.
    int delivered = 0;
    auto consumer = [](SimContext &ctx, MinnowEngine &eng,
                       int &delivered) -> CoTask<void> {
        for (;;) {
            auto item = co_await eng.dequeue(ctx);
            if (!item)
                break;
            ++delivered;
        }
    };
    auto producer = [](SimContext &ctx,
                       MinnowEngine &eng) -> CoTask<void> {
        co_await ctx.waitUntil(2000);
        // Fill own local queue and overflow to global.
        for (int i = 0; i < 80; ++i)
            co_await eng.enqueue(ctx, {0, std::uint64_t(i)});
        // Drain own share.
        for (;;) {
            auto item = co_await eng.dequeue(ctx);
            if (!item)
                break;
        }
    };
    CoTask<void> t0 = consumer(c0, eng0, delivered);
    CoTask<void> t1 = producer(c1, eng1);
    t0.start();
    t1.start();
    m.eq.run();
    ASSERT_TRUE(t0.done());
    ASSERT_TRUE(t1.done());
    EXPECT_GT(delivered, 0) << "blocked worker must receive spilled"
                               " work through its fill daemon";
    EXPECT_TRUE(m.monitor.terminated());
}

TEST(Engine, DequeueBatchMatchesSingletonPops)
{
    // One k-task bundle call and k singleton calls must hand the
    // worker the same task set — bundling only amortizes the
    // round-trip, it must not invent, lose, or reorder work across
    // bucket boundaries beyond the usual chunked-OBIM slack.
    auto drain = [](bool batched) {
        Machine m(minnowConfig(2, false));
        m.monitor.reset(1);
        MinnowGlobalQueue q(&m.alloc, 3);
        PrefetchProgram prog;
        MinnowEngine eng(&m, 0, &q, prog);
        SimContext ctx(&m, 0);
        std::vector<worklist::WorkItem> got;
        std::uint64_t calls = 0;
        auto driver = [](SimContext &ctx, MinnowEngine &eng,
                         bool batched,
                         std::vector<worklist::WorkItem> &out,
                         std::uint64_t &calls) -> CoTask<void> {
            for (std::uint64_t i = 0; i < 8; ++i)
                co_await eng.enqueue(ctx, {std::int64_t(i % 4),
                                           100 + i});
            if (batched) {
                std::vector<worklist::WorkItem> bundle;
                for (;;) {
                    bundle.clear();
                    std::uint32_t n =
                        co_await eng.dequeueBatch(ctx, bundle, 4);
                    calls += 1;
                    if (n == 0)
                        break;
                    out.insert(out.end(), bundle.begin(),
                               bundle.end());
                }
            } else {
                for (;;) {
                    auto item = co_await eng.dequeue(ctx);
                    calls += 1;
                    if (!item)
                        break;
                    out.push_back(*item);
                }
            }
        };
        CoTask<void> t = driver(ctx, eng, batched, got, calls);
        t.start();
        m.eq.run();
        EXPECT_TRUE(t.done());
        EXPECT_TRUE(m.monitor.terminated());
        std::vector<std::uint64_t> payloads;
        for (const auto &item : got)
            payloads.push_back(item.payload);
        std::sort(payloads.begin(), payloads.end());
        return std::make_pair(payloads, calls);
    };
    auto [single, singleCalls] = drain(false);
    auto [bundled, bundleCalls] = drain(true);
    EXPECT_EQ(single, bundled);
    ASSERT_EQ(single.size(), 8u);
    EXPECT_LT(bundleCalls, singleCalls)
        << "bundling must shrink the number of engine round-trips";
}

TEST(Engine, SpecSlotDeliversAndConservesTasks)
{
    MachineConfig cfg = minnowConfig(2, false);
    cfg.minnow.specSlot = true;
    Machine m(cfg);
    m.monitor.reset(1);
    MinnowGlobalQueue q(&m.alloc, 3);
    PrefetchProgram prog;
    MinnowEngine eng(&m, 0, &q, prog);
    eng.setActiveCores(1);
    SimContext ctx(&m, 0);

    int got = 0;
    auto driver = [](SimContext &ctx, MinnowEngine &eng,
                     int &got) -> CoTask<void> {
        for (std::uint64_t i = 0; i < 12; ++i)
            co_await eng.enqueue(ctx, {0, i});
        for (;;) {
            auto item = co_await eng.dequeue(ctx);
            if (!item)
                break;
            ++got;
        }
    };
    CoTask<void> t = driver(ctx, eng, got);
    t.start();
    m.eq.run();
    ASSERT_TRUE(t.done());
    EXPECT_EQ(got, 12);
    EXPECT_TRUE(m.monitor.terminated());
    const EngineStats &es = eng.stats();
    EXPECT_GT(es.specDeposits, 0u)
        << "a drain loop must trigger speculative deposits";
    // Every deposit is either consumed by the core or reclaimed;
    // none may evaporate.
    EXPECT_EQ(es.specDeposits, es.specHits + es.specReclaims);
}

TEST(EngineCredits, WakeRecyclesCreditWithoutDoubleCount)
{
    // Satellite regression: a credit waiter woken by a handoff whose
    // line was demand-filled while it slept recycles the credit via
    // creditReturn(false). That recycle must not recount the stall,
    // must not resume anyone twice, and must leave the pool full.
    MachineConfig cfg = minnowConfig(2, true);
    cfg.minnow.prefetchCredits = 1;
    Machine m(cfg);
    m.monitor.reset(1);
    MinnowGlobalQueue q(&m.alloc, 3);
    PrefetchProgram prog;
    MinnowEngine eng(&m, 0, &q, prog);
    Addr lineA = m.alloc.allocAnon(64);
    Addr lineB = m.alloc.allocAnon(64);

    int done = 0;
    auto prefetcher = [](Machine &m, MinnowEngine &eng, Addr addr,
                         bool prefetch, int &done) -> CoTask<void> {
        ThreadletCtx tc(&eng, m.eq.now());
        co_await tc.load(addr, prefetch);
        done += 1;
    };
    // A takes the only credit; B parks on the pool; C demand-loads
    // B's line (demand traffic needs no credit), so by the time B
    // wakes its line is already resident.
    CoTask<void> a = prefetcher(m, eng, lineA, true, done);
    CoTask<void> b = prefetcher(m, eng, lineB, true, done);
    CoTask<void> c = prefetcher(m, eng, lineB, false, done);
    a.start();
    b.start();
    c.start();
    // Long after the fill lands, the consumer returns the credit:
    // direct handoff to the parked waiter, which now sees its line
    // resident and recycles.
    m.eq.schedule(50000, [](void *p) {
        static_cast<MinnowEngine *>(p)->creditReturn(true);
    }, &eng);
    m.eq.run();

    ASSERT_TRUE(a.done());
    ASSERT_TRUE(b.done());
    ASSERT_TRUE(c.done());
    EXPECT_EQ(done, 3);
    const EngineStats &es = eng.stats();
    EXPECT_EQ(es.creditStalls, 1u) << "recycle must not recount";
    EXPECT_EQ(es.creditHandoffs, 1u);
    EXPECT_EQ(es.prefetchLoads, 1u)
        << "the woken waiter's line was resident; no second issue";
    EXPECT_EQ(eng.creditWaitersNow(), 0u);
    EXPECT_EQ(eng.creditsFree(), 1u)
        << "the recycled credit must land back in the pool";
}

RunResult
runMinnowApp(apps::App &app, std::uint32_t threads, bool prefetch,
             graph::CsrGraph &g, std::uint32_t nodeBytes = 32,
             EngineStats *engineStats = nullptr)
{
    Machine m(minnowConfig(std::max(threads, 2u), prefetch));
    g.assignAddresses(m.alloc, nodeBytes);
    app.reset();
    RunConfig cfg;
    cfg.threads = threads;
    return runMinnow(m, app, 3, cfg, engineStats);
}

TEST(MinnowInt, SsspVerifies)
{
    graph::CsrGraph g = graph::gridGraph(24, 24, 100, 2);
    apps::SsspApp app(&g, 0, false, 1u << 30, "sssp");
    RunResult r = runMinnowApp(app, 4, false, g);
    EXPECT_FALSE(r.timedOut);
    EXPECT_TRUE(r.verified);
}

TEST(MinnowInt, SsspWithPrefetchVerifies)
{
    graph::CsrGraph g = graph::gridGraph(24, 24, 100, 2);
    apps::SsspApp app(&g, 0, false, 1u << 30, "sssp");
    EngineStats es;
    RunResult r = runMinnowApp(app, 4, true, g, 32, &es);
    EXPECT_FALSE(r.timedOut);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(es.prefetchTasks, 0u);
    EXPECT_GT(es.prefetchLoads, 0u);
    EXPECT_GT(r.mem.prefetchFills, 0u);
}

TEST(MinnowInt, CcVerifies)
{
    graph::CsrGraph g =
        graph::powerLawGraph(1200, 6.0, 0.9, 5, true);
    apps::CcApp app(&g, 1u << 30);
    RunResult r = runMinnowApp(app, 4, false, g);
    EXPECT_FALSE(r.timedOut);
    EXPECT_TRUE(r.verified);
}

TEST(MinnowInt, PrWithPrefetchVerifies)
{
    graph::CsrGraph g = graph::powerLawGraph(600, 8.0, 0.9, 13);
    apps::PrApp app(&g, 0.85, 1e-4, 1u << 30);
    RunResult r = runMinnowApp(app, 4, true, g);
    EXPECT_FALSE(r.timedOut);
    EXPECT_TRUE(r.verified);
}

TEST(MinnowInt, TcCustomPrefetchVerifies)
{
    graph::CsrGraph g = graph::wattsStrogatz(300, 6, 0.05, 17);
    apps::TcApp app(&g, 1u << 30);
    EngineStats es;
    RunResult r = runMinnowApp(app, 4, true, g, 64, &es);
    EXPECT_FALSE(r.timedOut);
    EXPECT_TRUE(r.verified);
    // The custom program walked tasks and chased adjacency.
    EXPECT_GT(es.prefetchTasks, 0u);
    EXPECT_GT(es.prefetchLoads, 0u);
}

TEST(MinnowInt, OffloadReducesWorklistCycles)
{
    auto galoisRun = [] {
        graph::CsrGraph g =
            graph::powerLawGraph(1200, 6.0, 0.9, 5, true);
        Machine m(minnowConfig(8, false));
        g.assignAddresses(m.alloc);
        apps::CcApp app(&g, 1u << 30);
        worklist::ObimWorklist wl(&m, 3, 16, 2);
        RunConfig cfg;
        cfg.threads = 8;
        return galois::runParallel(m, app, wl, cfg);
    };
    auto minnowRun = [](bool prefetch) {
        graph::CsrGraph g =
            graph::powerLawGraph(1200, 6.0, 0.9, 5, true);
        Machine m(minnowConfig(8, prefetch));
        g.assignAddresses(m.alloc);
        apps::CcApp app(&g, 1u << 30);
        RunConfig cfg;
        cfg.threads = 8;
        return runMinnow(m, app, 3, cfg);
    };
    RunResult sw = galoisRun();
    RunResult hw = minnowRun(false);
    RunResult pf = minnowRun(true);
    ASSERT_TRUE(sw.verified);
    ASSERT_TRUE(hw.verified);
    ASSERT_TRUE(pf.verified);
    double swShare = double(sw.phaseCycles[1]) /
                     double(sw.phaseCycles[0] + sw.phaseCycles[1]);
    double hwShare = double(hw.phaseCycles[1]) /
                     double(hw.phaseCycles[0] + hw.phaseCycles[1]);
    EXPECT_LT(hwShare, swShare)
        << "offload must shrink the worklist share of cycles";
    // At this toy scale offload alone only breaks even on CC (the
    // full-scale comparison lives in bench/fig16); with prefetching
    // the engines must win outright.
    EXPECT_LT(hw.cycles, sw.cycles * 1.15)
        << "offload must at least stay near the software baseline";
    EXPECT_LT(pf.cycles, sw.cycles)
        << "Minnow+prefetch should beat software scheduling on CC";
}

TEST(MinnowInt, PrefetchingCutsL2Mpki)
{
    auto run = [](bool prefetch) {
        graph::CsrGraph g = graph::randomGraph(20000, 4.0, 7);
        Machine m(minnowConfig(8, prefetch));
        g.assignAddresses(m.alloc);
        apps::SsspApp app(&g, 0, true, 1u << 30, "bfs");
        RunConfig cfg;
        cfg.threads = 8;
        return runMinnow(m, app, 2, cfg);
    };
    RunResult off = run(false);
    RunResult on = run(true);
    ASSERT_TRUE(off.verified);
    ASSERT_TRUE(on.verified);
    EXPECT_LT(on.l2Mpki, off.l2Mpki * 0.5)
        << "worklist-directed prefetching must slash L2 MPKI"
        << " (off=" << off.l2Mpki << " on=" << on.l2Mpki << ")";
    EXPECT_LT(on.cycles, off.cycles);
}

TEST(MinnowInt, CreditsAreConservedAndThrottle)
{
    MachineConfig cfg = minnowConfig(2, true);
    cfg.minnow.prefetchCredits = 4; // tiny pool: must throttle.
    Machine m(cfg);
    graph::CsrGraph g = graph::gridGraph(20, 20, 50, 3);
    g.assignAddresses(m.alloc);
    apps::SsspApp app(&g, 0, false, 1u << 30, "sssp");
    RunConfig rc;
    rc.threads = 2;
    EngineStats es;
    RunResult r = runMinnow(m, app, 3, rc, &es);
    ASSERT_TRUE(r.verified);
    EXPECT_GT(es.creditStalls, 0u)
        << "a 4-credit pool must stall prefetch threadlets";
    // Conservation: every fill either returned its credit (use,
    // evict, invalidate) or is still resident and marked at the end
    // of the run — bounded by the total credit pool.
    std::uint64_t returned = r.mem.prefetchUsed +
                             r.mem.prefetchEvictedUnused +
                             r.mem.prefetchInvalidated;
    EXPECT_LE(returned, r.mem.prefetchFills);
    EXPECT_LE(r.mem.prefetchFills - returned,
              std::uint64_t(2) * cfg.minnow.prefetchCredits);
}

TEST(MinnowInt, DeterministicAcrossRuns)
{
    auto once = [] {
        graph::CsrGraph g = graph::gridGraph(20, 20, 100, 1);
        Machine m(minnowConfig(4, true));
        g.assignAddresses(m.alloc);
        apps::SsspApp app(&g, 0, false, 1u << 30, "sssp");
        RunConfig cfg;
        cfg.threads = 4;
        return runMinnow(m, app, 3, cfg).cycles;
    };
    EXPECT_EQ(once(), once());
}

// One full run with a given knob setting, returning the machine's
// entire stats snapshot so byte-identity checks catch any drift.
static std::string
runKnobbedSssp(std::uint32_t dequeueBatch, std::uint32_t pushBatch,
               bool specSlot, bool explicitDefaults = true,
               EngineStats *es = nullptr, bool *verified = nullptr)
{
    graph::CsrGraph g = graph::gridGraph(20, 20, 100, 1);
    MachineConfig mc = minnowConfig(4, true);
    if (explicitDefaults) {
        mc.minnow.dequeueBatch = dequeueBatch;
        mc.minnow.pushBatch = pushBatch;
        mc.minnow.specSlot = specSlot;
    }
    Machine m(mc);
    g.assignAddresses(m.alloc);
    apps::SsspApp app(&g, 0, false, 1u << 30, "sssp");
    RunConfig cfg;
    cfg.threads = 4;
    RunResult r = runMinnow(m, app, 3, cfg, es);
    EXPECT_FALSE(r.timedOut);
    EXPECT_TRUE(r.verified);
    if (verified)
        *verified = r.verified;
    return r.statsJson;
}

TEST(MinnowInt, ExplicitDefaultKnobsMatchDefaultsBitForBit)
{
    // --dequeue-batch=1 --push-batch=1 (and no --spec-slot) must be
    // the exact pre-knob engine: the full stats snapshot, not just
    // the cycle count, is byte-identical to a default-config run.
    std::string dflt = runKnobbedSssp(1, 1, false,
                                      /*explicitDefaults=*/false);
    std::string expl = runKnobbedSssp(1, 1, false);
    EXPECT_EQ(dflt, expl);
}

TEST(MinnowInt, OffloadKnobsAreDeterministicAcrossRuns)
{
    // Seeded determinism holds under each knob in isolation: two
    // identical runs give byte-identical stats snapshots.
    EXPECT_EQ(runKnobbedSssp(4, 1, false),
              runKnobbedSssp(4, 1, false));
    EXPECT_EQ(runKnobbedSssp(1, 4, false),
              runKnobbedSssp(1, 4, false));
    EXPECT_EQ(runKnobbedSssp(1, 1, true),
              runKnobbedSssp(1, 1, true));
}

TEST(MinnowInt, BatchedDequeueVerifiesAndBundles)
{
    EngineStats es;
    runKnobbedSssp(4, 1, false, true, &es);
    EXPECT_GT(es.dequeueBundleTasks, 0u);
    EXPECT_GT(es.dequeueBundleTasks, es.dequeues)
        << "bundles must deliver more tasks than round-trips";
}

TEST(MinnowInt, BatchedPushVerifiesAndFlushes)
{
    EngineStats es;
    runKnobbedSssp(1, 4, false, true, &es);
    EXPECT_GT(es.pushedBatched + es.creditsBatched, 0u);
    EXPECT_GT(es.pushFlushes + es.creditFlushes, 0u);
}

TEST(MinnowInt, SpecSlotVerifiesAndConservesDeposits)
{
    EngineStats es;
    runKnobbedSssp(1, 1, true, true, &es);
    EXPECT_GT(es.specDeposits, 0u);
    EXPECT_GT(es.specHits, 0u)
        << "speculative delivery must convert some pops into hits";
    EXPECT_EQ(es.specDeposits, es.specHits + es.specReclaims)
        << "every deposit is consumed or reclaimed, never lost";
}

TEST(Area, MatchesPaperHeadlines)
{
    MachineConfig cfg = paperMachine();
    AreaEstimate a = estimateArea(cfg);
    EXPECT_NEAR(a.sramMm2At28, 0.03, 0.003);
    EXPECT_NEAR(a.sramMm2At14, 0.008, 0.001);
    EXPECT_NEAR(a.controlMm2At14, 0.1, 1e-9);
    EXPECT_LT(a.overheadPercent, 1.0);
    EXPECT_GT(a.overheadPercent, 0.5);
    EXPECT_FALSE(a.describe().empty());
}

TEST(Area, ScalesWithStructures)
{
    MachineConfig small = paperMachine();
    MachineConfig big = paperMachine();
    big.minnow.localQueueEntries *= 4;
    big.minnow.loadBufferEntries *= 4;
    EXPECT_GT(estimateArea(big).sramMm2At28,
              estimateArea(small).sramMm2At28);
}

} // anonymous namespace
} // namespace minnow::minnowengine
