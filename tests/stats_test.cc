/**
 * @file
 * Unit tests for the hierarchical stats registry (base/stats.hh):
 * registration/lookup, formula evaluation, histogram bucketing,
 * JSON export round-trip, and EventQueue-driven interval sampling.
 *
 * The JSON checks parse the emitted document with a minimal
 * recursive-descent parser so a malformed dump (stray comma, bad
 * escape, truncated object) fails loudly rather than "looks fine".
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "sim/event_queue.hh"

namespace minnow
{
namespace
{

//
// Minimal JSON parser (objects, arrays, strings, numbers, bools).
//

struct JsonValue
{
    enum Kind { Null, Bool, Num, Str, Arr, Obj } kind = Null;
    bool b = false;
    double num = 0;
    std::string str;
    std::vector<JsonValue> arr;
    std::map<std::string, JsonValue> obj;

    const JsonValue &
    at(const std::string &key) const
    {
        static const JsonValue missing;
        auto it = obj.find(key);
        return it == obj.end() ? missing : it->second;
    }

    bool has(const std::string &key) const { return obj.count(key); }
};

class JsonParser
{
  public:
    // Copies the text: callers hand in toJson() temporaries.
    explicit JsonParser(std::string text) : s_(std::move(text)) {}

    /** Parse the full document; sets ok() false on any error. */
    JsonValue
    parse()
    {
        JsonValue v = value();
        skipWs();
        if (pos_ != s_.size())
            ok_ = false;
        return v;
    }

    bool ok() const { return ok_; }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    JsonValue
    value()
    {
        skipWs();
        if (pos_ >= s_.size()) {
            ok_ = false;
            return {};
        }
        char c = s_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == 't' || c == 'f')
            return boolean();
        return number();
    }

    JsonValue
    object()
    {
        JsonValue v;
        v.kind = JsonValue::Obj;
        consume('{');
        if (consume('}'))
            return v;
        do {
            JsonValue key = string();
            if (!ok_ || !consume(':'))
                break;
            v.obj[key.str] = value();
        } while (ok_ && consume(','));
        if (!consume('}'))
            ok_ = false;
        return v;
    }

    JsonValue
    array()
    {
        JsonValue v;
        v.kind = JsonValue::Arr;
        consume('[');
        if (consume(']'))
            return v;
        do {
            v.arr.push_back(value());
        } while (ok_ && consume(','));
        if (!consume(']'))
            ok_ = false;
        return v;
    }

    JsonValue
    string()
    {
        JsonValue v;
        v.kind = JsonValue::Str;
        if (!consume('"')) {
            ok_ = false;
            return v;
        }
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c == '\\' && pos_ < s_.size()) {
                char e = s_[pos_++];
                switch (e) {
                  case 'n': v.str += '\n'; break;
                  case 't': v.str += '\t'; break;
                  case '"': v.str += '"'; break;
                  case '\\': v.str += '\\'; break;
                  case 'u':
                    // Tests only need ASCII escapes.
                    if (pos_ + 4 <= s_.size()) {
                        v.str += char(std::stoul(
                            s_.substr(pos_, 4), nullptr, 16));
                        pos_ += 4;
                    } else {
                        ok_ = false;
                    }
                    break;
                  default: ok_ = false;
                }
            } else {
                v.str += c;
            }
        }
        if (!consume('"'))
            ok_ = false;
        return v;
    }

    JsonValue
    boolean()
    {
        JsonValue v;
        v.kind = JsonValue::Bool;
        if (s_.compare(pos_, 4, "true") == 0) {
            v.b = true;
            pos_ += 4;
        } else if (s_.compare(pos_, 5, "false") == 0) {
            v.b = false;
            pos_ += 5;
        } else {
            ok_ = false;
        }
        return v;
    }

    JsonValue
    number()
    {
        JsonValue v;
        v.kind = JsonValue::Num;
        std::size_t end = pos_;
        while (end < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[end])) ||
                s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
                s_[end] == 'e' || s_[end] == 'E'))
            ++end;
        if (end == pos_) {
            ok_ = false;
            return v;
        }
        v.num = std::stod(s_.substr(pos_, end - pos_));
        pos_ = end;
        return v;
    }

    std::string s_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

//
// Registration and lookup.
//

TEST(StatsRegistry, RegisterAndFind)
{
    StatsRegistry reg;
    StatsGroup &g = reg.group("core0");
    CounterStat &c = g.counter("uops", "micro-ops committed");
    ScalarStat &s = g.scalar("freqGhz", "clock");
    s = 2.5;
    ++c;
    c += 9;

    ASSERT_NE(reg.find("core0"), nullptr);
    EXPECT_EQ(reg.find("nope"), nullptr);
    const Stat *uops = reg.find("core0")->find("uops");
    ASSERT_NE(uops, nullptr);
    EXPECT_EQ(uops->kind(), StatKind::Counter);
    EXPECT_DOUBLE_EQ(uops->value(), 10.0);
    EXPECT_DOUBLE_EQ(reg.find("core0")->find("freqGhz")->value(),
                     2.5);
    EXPECT_EQ(reg.find("core0")->find("nope"), nullptr);

    // group() is get-or-create; the same group comes back.
    EXPECT_EQ(&reg.group("core0"), &g);
}

TEST(StatsRegistry, FreshGroupReplacesAndRemoveDrops)
{
    StatsRegistry reg;
    reg.group("worklist").counter("pops");
    ASSERT_NE(reg.find("worklist")->find("pops"), nullptr);

    // freshGroup drops the old stats (machine reuse).
    StatsGroup &g2 = reg.freshGroup("worklist");
    EXPECT_EQ(g2.find("pops"), nullptr);
    g2.counter("pops");

    reg.removeGroup("worklist");
    EXPECT_EQ(reg.find("worklist"), nullptr);

    // Groups come back name-sorted.
    reg.group("b");
    reg.group("a");
    auto gs = reg.groups();
    ASSERT_EQ(gs.size(), 2u);
    EXPECT_EQ(gs[0]->name(), "a");
    EXPECT_EQ(gs[1]->name(), "b");
}

//
// Formula evaluation.
//

TEST(StatsRegistry, FormulaTracksLiveCountersLazily)
{
    StatsRegistry reg;
    std::uint64_t misses = 0, uops = 0;
    FormulaStat &mpki = reg.group("l2_0").formula(
        "mpki", "misses per kilo-instruction", [&] {
            return uops ? double(misses) / (double(uops) / 1000.0)
                        : 0.0;
        });

    // 0/0 guarded by the formula itself.
    EXPECT_DOUBLE_EQ(mpki.value(), 0.0);

    misses = 50;
    uops = 10'000;
    EXPECT_DOUBLE_EQ(mpki.value(), 5.0);

    // Lazy: later counter updates show in the next evaluation.
    misses = 100;
    EXPECT_DOUBLE_EQ(mpki.value(), 10.0);
}

TEST(StatsRegistry, FormulaNonFiniteReadsAsZero)
{
    StatsRegistry reg;
    FormulaStat &f = reg.group("sim").formula(
        "bad", "division by zero", [] { return 1.0 / 0.0; });
    EXPECT_DOUBLE_EQ(f.value(), 0.0);
}

//
// Histogram bucketing.
//

TEST(StatsRegistry, HistogramBucketsAndOverflow)
{
    StatsRegistry reg;
    HistogramStat &h = reg.group("worklist").histogram(
        "popLatency", "cycles", 10, 4);

    h.sample(0);   // bucket 0.
    h.sample(9);   // bucket 0.
    h.sample(10);  // bucket 1.
    h.sample(35);  // bucket 3.
    h.sample(39);  // bucket 3.
    h.sample(400); // overflow -> last bucket (3).

    EXPECT_EQ(h.numBuckets(), 4u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(3), 3u);
    EXPECT_EQ(h.total(), 6u);
    EXPECT_DOUBLE_EQ(h.mean(), (0 + 9 + 10 + 35 + 39 + 400) / 6.0);
    // Histograms report their mean as the scalar value.
    EXPECT_DOUBLE_EQ(h.value(), h.mean());

    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.bucketCount(3), 0u);
}

TEST(StatsRegistry, HistogramDegenerateParamsClamp)
{
    StatsRegistry reg;
    // Zero width/bucket-count clamp to 1 instead of dividing by 0.
    HistogramStat &h =
        reg.group("g").histogram("h", "degenerate", 0, 0);
    h.sample(1234);
    EXPECT_EQ(h.bucketWidth(), 1u);
    EXPECT_EQ(h.numBuckets(), 1u);
    EXPECT_EQ(h.bucketCount(0), 1u);
}

//
// Flatten.
//

TEST(StatsRegistry, FlattenUsesDottedKeys)
{
    StatsRegistry reg;
    StatsGroup &g = reg.group("minnow0");
    g.counter("creditStalls") += 7;
    HistogramStat &h = g.histogram("occ", "", 1, 4);
    h.sample(2);

    StatsReport rep;
    reg.flatten(rep);
    EXPECT_DOUBLE_EQ(rep.get("minnow0.creditStalls"), 7.0);
    EXPECT_DOUBLE_EQ(rep.get("minnow0.occ.mean"), 2.0);
    EXPECT_DOUBLE_EQ(rep.get("minnow0.occ.total"), 1.0);
}

//
// JSON round-trip.
//

TEST(StatsRegistry, JsonRoundTrip)
{
    StatsRegistry reg;
    StatsGroup &core = reg.group("core0");
    core.counter("uops") += 12345;
    core.scalar("ipc\"weird\nname") = 0.75; // escaping probe.
    std::uint64_t misses = 250, uops = 12345;
    reg.group("l2_0").formula("mpki", "", [&] {
        return double(misses) / (double(uops) / 1000.0);
    });
    HistogramStat &h =
        reg.group("worklist").histogram("popLatency", "", 16, 8);
    h.sample(5);
    h.sample(100);
    h.sample(10'000); // overflow bucket.

    JsonParser p(reg.toJson());
    JsonValue doc = p.parse();
    ASSERT_TRUE(p.ok()) << reg.toJson();

    EXPECT_EQ(doc.at("schema").str, "minnow-stats-1");
    const JsonValue &groups = doc.at("groups");
    ASSERT_EQ(groups.kind, JsonValue::Obj);
    ASSERT_TRUE(groups.has("core0"));
    ASSERT_TRUE(groups.has("l2_0"));
    ASSERT_TRUE(groups.has("worklist"));

    EXPECT_DOUBLE_EQ(groups.at("core0").at("uops").num, 12345.0);
    EXPECT_DOUBLE_EQ(
        groups.at("core0").at("ipc\"weird\nname").num, 0.75);
    EXPECT_NEAR(groups.at("l2_0").at("mpki").num,
                250.0 / 12.345, 1e-9);

    const JsonValue &hist = groups.at("worklist").at("popLatency");
    ASSERT_EQ(hist.kind, JsonValue::Obj);
    EXPECT_EQ(hist.at("type").str, "histogram");
    EXPECT_DOUBLE_EQ(hist.at("bucketWidth").num, 16.0);
    EXPECT_DOUBLE_EQ(hist.at("total").num, 3.0);
    ASSERT_EQ(hist.at("counts").arr.size(), 8u);
    EXPECT_DOUBLE_EQ(hist.at("counts").arr[0].num, 1.0); // 5.
    EXPECT_DOUBLE_EQ(hist.at("counts").arr[6].num, 1.0); // 100.
    EXPECT_DOUBLE_EQ(hist.at("counts").arr[7].num, 1.0); // overflow.
}

TEST(StatsRegistry, JsonIntegersHaveNoExponent)
{
    StatsRegistry reg;
    reg.group("sim").counter("big") += 123'456'789'012ull;
    std::string json = reg.toJson();
    EXPECT_NE(json.find("123456789012"), std::string::npos) << json;
    EXPECT_EQ(json.find("1.23456789012e"), std::string::npos);
}

//
// Interval sampling off the EventQueue.
//

void
nopEvent(void *)
{
}

TEST(StatsRegistry, SamplingRecordsIntervalsAndLetsQueueDrain)
{
    EventQueue eq;
    StatsRegistry reg;
    std::uint64_t work = 0;
    reg.group("sim").formula("work", "",
                             [&] { return double(work); });

    // Simulated activity at cycles 10..500.
    for (Cycle t = 10; t <= 500; t += 10)
        eq.schedule(t, nopEvent, &work);

    reg.startSampling(eq, 100);
    work = 42;
    eq.run();

    // The queue drained: the sampler must not keep the sim alive.
    EXPECT_TRUE(eq.empty());
    ASSERT_GE(reg.samples().size(), 4u);
    EXPECT_EQ(reg.samples()[0].cycle, 100u);
    EXPECT_EQ(reg.samples()[1].cycle, 200u);
    EXPECT_DOUBLE_EQ(reg.samples()[0].values.at("sim.work"), 42.0);

    // Interval samples ride along in the JSON document.
    JsonParser p(reg.toJson());
    JsonValue doc = p.parse();
    ASSERT_TRUE(p.ok());
    const JsonValue &intervals = doc.at("intervals");
    ASSERT_EQ(intervals.kind, JsonValue::Arr);
    ASSERT_GE(intervals.arr.size(), 4u);
    EXPECT_DOUBLE_EQ(intervals.arr[0].at("cycle").num, 100.0);
    EXPECT_DOUBLE_EQ(
        intervals.arr[0].at("values").at("sim.work").num, 42.0);
}

TEST(StatsRegistry, WriteJsonFileRoundTrips)
{
    StatsRegistry reg;
    reg.group("sim").counter("cycles") += 77;

    std::string path =
        testing::TempDir() + "/minnow_stats_test.json";
    ASSERT_TRUE(reg.writeJsonFile(path));

    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::string text;
    char buf[256];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());

    JsonParser p(text);
    JsonValue doc = p.parse();
    ASSERT_TRUE(p.ok()) << text;
    EXPECT_DOUBLE_EQ(
        doc.at("groups").at("sim").at("cycles").num, 77.0);
}

} // anonymous namespace
} // namespace minnow
