/**
 * @file
 * Checkpoint container + visitor tests: format roundtrip, the
 * corruption matrix (truncation, bit flips, version bumps — every
 * one rejected with a specific diagnostic, never a crash or a
 * silent misload), a seeded corruption fuzz loop, and machine-level
 * save/validate/restore including config-fingerprint rejection.
 */

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/ckpt.hh"
#include "base/rng.hh"
#include "harness/workloads.hh"
#include "runtime/machine.hh"
#include "sim/checkpoint.hh"

using namespace minnow;

namespace
{

/** A small two-section checkpoint image. */
std::vector<std::uint8_t>
sampleImage()
{
    ckpt::Writer w;
    w.add("alpha", {1, 2, 3, 4, 5});
    w.add("beta", {9, 8, 7});
    return w.encode();
}

/** Recompute the trailing file CRC after an intentional edit. */
void
refreshFileCrc(std::vector<std::uint8_t> &buf)
{
    std::uint32_t c =
        ckpt::crc32(buf.data(), buf.size() - 4);
    for (int i = 0; i < 4; ++i)
        buf[buf.size() - 4 + std::size_t(i)] =
            std::uint8_t(c >> (8 * i));
}

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "minnow_ckpt_test_" + name;
}

} // anonymous namespace

TEST(CkptContainer, EncodeDecodeRoundtrip)
{
    std::vector<std::uint8_t> buf = sampleImage();
    ckpt::Reader r;
    ASSERT_EQ(r.decode(buf), "");
    ASSERT_EQ(r.sections().size(), 2u);
    const ckpt::Section *a = r.find("alpha");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->bytes, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
    EXPECT_NE(r.find("beta"), nullptr);
    EXPECT_EQ(r.find("gamma"), nullptr);
}

TEST(CkptContainer, FileRoundtripIsAtomic)
{
    ckpt::Writer w;
    w.add("only", {42});
    std::string path = tmpPath("roundtrip.ckpt");
    ASSERT_EQ(w.writeFile(path), "");
    // The temp file must not linger after the rename.
    std::FILE *tmp = std::fopen((path + ".tmp").c_str(), "rb");
    EXPECT_EQ(tmp, nullptr);
    ckpt::Reader r;
    ASSERT_EQ(r.openFile(path), "");
    ASSERT_NE(r.find("only"), nullptr);
    EXPECT_EQ(r.find("only")->bytes[0], 42);
    std::remove(path.c_str());
}

TEST(CkptContainer, MissingFileIsDiagnosed)
{
    ckpt::Reader r;
    std::string err = r.openFile(tmpPath("does_not_exist.ckpt"));
    EXPECT_NE(err.find("cannot open"), std::string::npos) << err;
}

TEST(CkptContainer, TruncationIsDiagnosed)
{
    std::vector<std::uint8_t> buf = sampleImage();
    // Every proper prefix must be rejected with a diagnostic.
    for (std::size_t n = 0; n < buf.size(); ++n) {
        std::vector<std::uint8_t> cut(buf.begin(),
                                      buf.begin() + long(n));
        ckpt::Reader r;
        std::string err = r.decode(cut);
        ASSERT_FALSE(err.empty()) << "prefix of " << n << " bytes";
        EXPECT_EQ(r.sections().size(), 0u);
        // Short prefixes name the truncation; anything past the
        // magic fails the whole-file CRC.
        bool specific =
            err.find("truncated") != std::string::npos ||
            err.find("CRC mismatch") != std::string::npos ||
            err.find("bad magic") != std::string::npos;
        EXPECT_TRUE(specific) << err;
    }
}

TEST(CkptContainer, BitFlipAnywhereIsDiagnosed)
{
    std::vector<std::uint8_t> buf = sampleImage();
    for (std::size_t i = 0; i < buf.size(); ++i) {
        std::vector<std::uint8_t> bad = buf;
        bad[i] ^= 0x10;
        ckpt::Reader r;
        std::string err = r.decode(bad);
        ASSERT_FALSE(err.empty()) << "flip at byte " << i;
        EXPECT_EQ(r.sections().size(), 0u);
    }
}

TEST(CkptContainer, PayloadFlipNamesTheSection)
{
    std::vector<std::uint8_t> buf = sampleImage();
    // Flip one payload byte of section "alpha" and refresh the file
    // CRC so the per-section CRC does the catching (and names the
    // component whose payload changed).
    std::size_t payloadOff =
        ckpt::kMagicLen + 4 /*count*/ + 4 /*nameLen*/ + 5 /*name*/ +
        8 /*payLen*/;
    std::vector<std::uint8_t> bad = buf;
    bad[payloadOff] ^= 0xFF;
    refreshFileCrc(bad);
    ckpt::Reader r;
    std::string err = r.decode(bad);
    EXPECT_NE(err.find("section 'alpha' CRC mismatch"),
              std::string::npos)
        << err;
}

TEST(CkptContainer, VersionBumpIsDiagnosed)
{
    std::vector<std::uint8_t> buf = sampleImage();
    // "minnow-ckpt-1\n" -> "minnow-ckpt-2\n": a future format must
    // be named as a version problem, not a CRC failure.
    buf[ckpt::kMagicLen - 2] = '2';
    refreshFileCrc(buf);
    ckpt::Reader r;
    std::string err = r.decode(buf);
    EXPECT_NE(err.find("bad magic/version"), std::string::npos)
        << err;
    EXPECT_NE(err.find("minnow-ckpt-2"), std::string::npos) << err;
}

TEST(CkptContainer, SectionLengthOverrunIsBoundsChecked)
{
    std::vector<std::uint8_t> buf = sampleImage();
    // Blow up section alpha's 8-byte payload length field, refresh
    // the file CRC: the bounds check must catch it (a reader that
    // trusted the length would read far out of bounds).
    std::size_t lenOff = ckpt::kMagicLen + 4 + 4 + 5;
    buf[lenOff + 3] = 0x7F;
    refreshFileCrc(buf);
    ckpt::Reader r;
    std::string err = r.decode(buf);
    EXPECT_NE(err.find("overruns the file"), std::string::npos)
        << err;
}

TEST(CkptContainer, FuzzedCorruptionsAlwaysDetected)
{
    std::vector<std::uint8_t> buf = sampleImage();
    Rng rng(0xC0FFEE);
    for (int trial = 0; trial < 64; ++trial) {
        std::vector<std::uint8_t> bad = buf;
        switch (rng.below(3)) {
          case 0: { // flip 1-4 random bytes
            int flips = 1 + int(rng.below(4));
            for (int f = 0; f < flips; ++f) {
                std::size_t i = rng.below(bad.size());
                std::uint8_t bit =
                    std::uint8_t(1u << rng.below(8));
                bad[i] ^= bit;
            }
            break;
          }
          case 1: // truncate to a random prefix
            bad.resize(rng.below(bad.size()));
            break;
          default: { // append random garbage
            int extra = 1 + int(rng.below(16));
            for (int e = 0; e < extra; ++e)
                bad.push_back(std::uint8_t(rng.below(256)));
            break;
          }
        }
        if (bad == buf)
            continue; // a flip can undo a flip
        ckpt::Reader r;
        std::string err = r.decode(bad);
        EXPECT_FALSE(err.empty())
            << "trial " << trial << " (size " << bad.size()
            << ") was silently accepted";
        EXPECT_EQ(r.sections().size(), 0u);
    }
}

TEST(CkptVisitor, ScalarStringVectorRoundtrip)
{
    std::vector<std::uint8_t> buf;
    {
        ckpt::Ckpt ck = ckpt::Ckpt::saver(&buf);
        std::uint64_t a = 0x1122334455667788ull;
        double d = 2.5;
        bool b = true;
        std::string s = "hello";
        std::vector<std::uint32_t> v = {1, 2, 3};
        ck.io(a);
        ck.io(d);
        ck.io(b);
        ck.io(s);
        ck.io(v);
        ASSERT_TRUE(ck.ok());
    }
    ckpt::Ckpt ck = ckpt::Ckpt::loader(buf.data(), buf.size());
    std::uint64_t a = 0;
    double d = 0;
    bool b = false;
    std::string s;
    std::vector<std::uint32_t> v;
    ck.io(a);
    ck.io(d);
    ck.io(b);
    ck.io(s);
    ck.io(v);
    ASSERT_TRUE(ck.ok()) << ck.error();
    EXPECT_EQ(a, 0x1122334455667788ull);
    EXPECT_EQ(d, 2.5);
    EXPECT_TRUE(b);
    EXPECT_EQ(s, "hello");
    EXPECT_EQ(v, (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(CkptVisitor, UnderrunLatchesErrorAndZeroFills)
{
    std::vector<std::uint8_t> buf;
    {
        ckpt::Ckpt ck = ckpt::Ckpt::saver(&buf);
        std::uint32_t a = 7;
        ck.io(a);
    }
    ckpt::Ckpt ck = ckpt::Ckpt::loader(buf.data(), buf.size());
    std::uint32_t a = 0;
    std::uint64_t b = 99;
    ck.io(a);
    ck.io(b); // 8 bytes from a 4-byte payload: underrun.
    EXPECT_EQ(a, 7u);
    EXPECT_EQ(b, 0u) << "underrun reads must zero-fill";
    EXPECT_FALSE(ck.ok());
    EXPECT_NE(ck.error().find("underrun"), std::string::npos);
    // Later reads stay zero-filled, first error is kept.
    std::uint32_t c = 5;
    ck.io(c);
    EXPECT_EQ(c, 0u);
}

TEST(CkptVisitor, OversizedVectorLengthIsRejected)
{
    std::vector<std::uint8_t> buf;
    {
        ckpt::Ckpt ck = ckpt::Ckpt::saver(&buf);
        std::uint64_t bogus = ~std::uint64_t(0) / 2;
        ck.io(bogus);
    }
    ckpt::Ckpt ck = ckpt::Ckpt::loader(buf.data(), buf.size());
    std::vector<std::uint64_t> v;
    ck.io(v);
    EXPECT_FALSE(ck.ok());
    EXPECT_TRUE(v.empty());
    EXPECT_NE(ck.error().find("overruns payload"),
              std::string::npos);
}

TEST(CkptMachine, SaveValidateRestoreRoundtrip)
{
    MachineConfig mc = scaledMachine();
    mc.numCores = 2;
    runtime::Machine m(mc);
    std::string path = tmpPath("machine.ckpt");
    ASSERT_EQ(m.save(path), "");

    // Untouched machine: the witness must match byte-for-byte.
    ckpt::Reader r;
    ASSERT_EQ(m.restore(path, r), "");
    EXPECT_TRUE(m.validateAgainst(r).empty());

    // Perturb the allocator; the witness must name the section.
    m.alloc.alloc("ckpt-test", 64);
    std::vector<std::string> bad = m.validateAgainst(r);
    ASSERT_EQ(bad.size(), 1u);
    EXPECT_EQ(bad[0], "alloc");
    std::remove(path.c_str());
}

TEST(CkptMachine, DifferentConfigIsRejected)
{
    MachineConfig mc = scaledMachine();
    mc.numCores = 2;
    runtime::Machine m(mc);
    std::string path = tmpPath("machine_cfg.ckpt");
    ASSERT_EQ(m.save(path), "");

    MachineConfig other = mc;
    other.numCores = 4;
    runtime::Machine m2(other);
    ckpt::Reader r;
    std::string err = m2.restore(path, r);
    EXPECT_NE(err.find("different machine configuration"),
              std::string::npos)
        << err;
    std::remove(path.c_str());
}

TEST(CkptMachine, CkptHooksEmitInRegistrationOrder)
{
    MachineConfig mc = scaledMachine();
    mc.numCores = 1;
    runtime::Machine m(mc);
    std::uint32_t x = 1, y = 2;
    m.addCkptHook("hook_b", [&](ckpt::Ckpt &ck) { ck.io(x); });
    m.addCkptHook("hook_a", [&](ckpt::Ckpt &ck) { ck.io(y); });
    ckpt::Writer w;
    m.checkpointSections(w);
    const auto &secs = w.sections();
    ASSERT_GE(secs.size(), 2u);
    EXPECT_EQ(secs[secs.size() - 2].name, "hook_b");
    EXPECT_EQ(secs[secs.size() - 1].name, "hook_a");
    // Re-registration replaces in place but moves to the tail.
    m.addCkptHook("hook_b", [&](ckpt::Ckpt &ck) { ck.io(y); });
    ckpt::Writer w2;
    m.checkpointSections(w2);
    EXPECT_EQ(w2.sections().back().name, "hook_b");
    m.removeCkptHook("hook_a");
    m.removeCkptHook("hook_b");
}

TEST(CkptMeta, RoundtripAndWorkloadMismatchDegrades)
{
    harness::CkptMeta meta;
    meta.kind = 1;
    meta.cycle = 12345;
    meta.executed = 67890;
    meta.workload = "sssp";
    meta.scale = 0.25;
    meta.seed = 3;
    meta.config = "minnow-pf";
    meta.threads = 8;
    std::vector<std::uint8_t> buf;
    {
        ckpt::Ckpt ck = ckpt::Ckpt::saver(&buf);
        meta.checkpoint(ck);
    }
    harness::CkptMeta got;
    ckpt::Ckpt ck = ckpt::Ckpt::loader(buf.data(), buf.size());
    got.checkpoint(ck);
    ASSERT_TRUE(ck.ok());
    EXPECT_EQ(got.kind, 1);
    EXPECT_EQ(got.cycle, 12345u);
    EXPECT_EQ(got.executed, 67890u);
    EXPECT_EQ(got.workload, "sssp");
    EXPECT_EQ(got.config, "minnow-pf");

    // A checkpoint naming a different workload must warn and
    // cold-start (never load mismatched material).
    ckpt::Writer w;
    {
        std::vector<std::uint8_t> mb;
        ckpt::Ckpt sv = ckpt::Ckpt::saver(&mb);
        meta.checkpoint(sv);
        w.add("meta", std::move(mb));
    }
    std::string path = tmpPath("mismatch.ckpt");
    ASSERT_EQ(w.writeFile(path), "");
    harness::Workload wl =
        harness::makeWorkloadWarm("bfs", 0.25, 3, path);
    EXPECT_FALSE(wl.warmLoaded);
    EXPECT_EQ(wl.name, "bfs");
    ASSERT_NE(wl.app, nullptr);
    std::remove(path.c_str());
}

TEST(CkptWorkload, WarmLoadMatchesColdGeneration)
{
    // Save a warm checkpoint through the harness, then rebuild the
    // workload from it: the loaded graph must be byte-identical to
    // a cold generation (the material half of the warm-start
    // contract; the A/B equivalence script covers the full run).
    harness::Workload cold = harness::makeWorkload("sssp", 0.1, 2);
    harness::RunSpec spec;
    spec.config = harness::Config::Minnow;
    spec.threads = 2;
    spec.machine.numCores = 2;
    spec.checkpointOut = tmpPath("warm.ckpt");
    harness::runExperiment(cold, spec);

    harness::Workload warm = harness::makeWorkloadWarm(
        "sssp", 0.1, 2, spec.checkpointOut);
    EXPECT_TRUE(warm.warmLoaded);
    std::vector<std::uint8_t> a, b;
    {
        ckpt::Ckpt ck = ckpt::Ckpt::saver(&a);
        cold.graph.checkpoint(ck);
    }
    {
        ckpt::Ckpt ck = ckpt::Ckpt::saver(&b);
        warm.graph.checkpoint(ck);
    }
    EXPECT_EQ(a, b);
    std::remove(spec.checkpointOut.c_str());
}
