/**
 * @file
 * Sharded-host infrastructure tests (sim/parallel): ShardMap
 * partition geometry, SPSC channel ordering and backpressure,
 * ShardPool fork-join epochs, the --host-par task farm, and the
 * end-to-end contract of the whole PR — byte-identical stats JSON
 * between --shards=1 (legacy single wheel) and sharded runs.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/workloads.hh"
#include "sim/config.hh"
#include "sim/parallel/shard_map.hh"
#include "sim/parallel/shard_pool.hh"
#include "sim/parallel/spsc_channel.hh"
#include "sim/parallel/task_farm.hh"

namespace minnow
{
namespace
{

TEST(ShardMap, PartitionIsContiguousAndCoversAllCores)
{
    parallel::ShardMap m(64, 4, 4);
    ASSERT_EQ(m.numShards(), 4u);
    std::uint32_t total = 0;
    for (std::uint32_t s = 0; s < m.numShards(); ++s) {
        EXPECT_EQ(m.firstCore(s), total);
        total += m.coresIn(s);
    }
    EXPECT_EQ(total, 64u);
    // shardOf agrees with the [firstCore, firstCore+coresIn) slices
    // and is monotone (contiguity).
    std::uint32_t prev = 0;
    for (std::uint32_t c = 0; c < 64; ++c) {
        std::uint32_t s = m.shardOf(c);
        EXPECT_GE(s, prev);
        EXPECT_GE(c, m.firstCore(s));
        EXPECT_LT(c, m.firstCore(s) + m.coresIn(s));
        prev = s;
    }
}

TEST(ShardMap, BoundariesAlignToEngineGroups)
{
    // 64 cores, 8-core engine groups, 3 shards: 8 groups split
    // 3/3/2 — every boundary is a multiple of 8 and an engine's
    // cores never straddle shards.
    parallel::ShardMap m(64, 8, 3);
    ASSERT_EQ(m.numShards(), 3u);
    for (std::uint32_t s = 0; s < m.numShards(); ++s)
        EXPECT_EQ(m.firstCore(s) % 8, 0u);
    EXPECT_EQ(m.coresIn(0), 24u);
    EXPECT_EQ(m.coresIn(1), 24u);
    EXPECT_EQ(m.coresIn(2), 16u);
    for (std::uint32_t c = 0; c < 64; ++c)
        EXPECT_EQ(m.shardOf(c), m.shardOf(c - c % 8));
}

TEST(ShardMap, ClampsShardsToEngineGroupCount)
{
    // 8 cores in 4-core groups = 2 groups; asking for 8 shards must
    // clamp to 2 so no shard is empty.
    parallel::ShardMap m(8, 4, 8);
    ASSERT_EQ(m.numShards(), 2u);
    EXPECT_EQ(m.coresIn(0), 4u);
    EXPECT_EQ(m.coresIn(1), 4u);
}

TEST(SpscChannel, FifoOrderAndSequenceStamps)
{
    parallel::SpscChannel<int> ch(4);
    EXPECT_TRUE(ch.empty());
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(ch.push(i * 10));
    // Full ring: push reports backpressure without losing data.
    EXPECT_FALSE(ch.push(99));
    parallel::Stamped<int> msg;
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(ch.pop(msg));
        EXPECT_EQ(msg.value, i * 10);
        EXPECT_EQ(msg.seq, std::uint64_t(i));
    }
    EXPECT_FALSE(ch.pop(msg));
    // Sequences keep counting across wraparound.
    EXPECT_TRUE(ch.push(123));
    ASSERT_TRUE(ch.pop(msg));
    EXPECT_EQ(msg.value, 123);
    EXPECT_EQ(msg.seq, 4u);
    EXPECT_EQ(ch.pushed(), 5u);
}

TEST(ShardPool, RunOnAllVisitsEveryLaneAndAdvancesEpochs)
{
    parallel::ShardPool pool(4);
    ASSERT_EQ(pool.lanes(), 4u);
    EXPECT_EQ(pool.epochs(), 0u);
    std::vector<std::atomic<std::uint32_t>> hits(4);
    for (int round = 0; round < 3; ++round) {
        pool.runOnAll([&](std::uint32_t lane) {
            hits[lane].fetch_add(1, std::memory_order_relaxed);
        });
    }
    for (std::uint32_t l = 0; l < 4; ++l)
        EXPECT_EQ(hits[l].load(), 3u) << "lane " << l;
    EXPECT_EQ(pool.epochs(), 3u);
}

TEST(ShardPool, ClosingBarrierPublishesWorkerResults)
{
    // The closing barrier's happens-before edge must make plain
    // (non-atomic) worker writes visible to the leader.
    parallel::ShardPool pool(3);
    std::vector<std::uint64_t> out(3, 0);
    for (std::uint64_t round = 1; round <= 10; ++round) {
        pool.runOnAll(
            [&](std::uint32_t lane) { out[lane] = round * 100 + lane; });
        for (std::uint32_t l = 0; l < 3; ++l)
            ASSERT_EQ(out[l], round * 100 + l);
    }
}

TEST(TaskFarm, RunsEveryIndexExactlyOnce)
{
    for (std::uint32_t threads : {1u, 2u, 4u}) {
        std::vector<std::atomic<std::uint32_t>> hits(17);
        parallel::runTaskFarm(17, threads, [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1u)
                << "threads=" << threads << " i=" << i;
    }
}

TEST(TaskFarm, InlineWhenSerialPreservesIndexOrder)
{
    std::vector<std::size_t> order;
    parallel::runTaskFarm(5, 1,
                          [&](std::size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(order[i], i);
}

/** Run one workload/config at a shard count; return stats JSON. */
std::string
runAt(const std::string &workload, harness::Config config,
      std::uint32_t shards)
{
    harness::Workload w = harness::makeWorkload(workload, 0.05, 7);
    harness::RunSpec spec;
    spec.config = config;
    spec.threads = 8;
    spec.machine.numCores = 8;
    spec.machine.shards = shards;
    auto r = harness::runExperiment(w, spec);
    EXPECT_TRUE(r.run.verified)
        << workload << " shards=" << shards;
    EXPECT_FALSE(r.run.statsJson.empty());
    return r.run.statsJson;
}

TEST(ShardedScheduler, SsspMinnowPfStatsByteIdenticalAcrossShards)
{
    std::string one = runAt("sssp", harness::Config::MinnowPf, 1);
    EXPECT_EQ(one, runAt("sssp", harness::Config::MinnowPf, 2));
    EXPECT_EQ(one, runAt("sssp", harness::Config::MinnowPf, 4));
}

TEST(ShardedScheduler, PrObimStatsByteIdenticalAcrossShards)
{
    std::string one = runAt("pr", harness::Config::Obim, 1);
    EXPECT_EQ(one, runAt("pr", harness::Config::Obim, 4));
}

} // anonymous namespace
} // namespace minnow
