/**
 * @file
 * Integration tests: every workload runs to completion on the full
 * simulated stack (executor + worklist + cores + caches) and
 * verifies against its serial host reference, across schedulers and
 * thread counts.
 */

#include <gtest/gtest.h>

#include <memory>

#include "apps/bc.hh"
#include "apps/cc.hh"
#include "apps/pr.hh"
#include "apps/sssp.hh"
#include "apps/tc.hh"
#include "galois/executor.hh"
#include "graph/builder.hh"
#include "graph/generators.hh"
#include "graph/gstats.hh"
#include "runtime/machine.hh"
#include "worklist/chunked.hh"
#include "worklist/obim.hh"
#include "worklist/strict_priority.hh"

namespace minnow
{
namespace
{

using apps::App;
using galois::RunConfig;
using galois::RunResult;
using galois::runParallel;
using runtime::Machine;

MachineConfig
testConfig(std::uint32_t cores)
{
    MachineConfig cfg = scaledMachine();
    cfg.numCores = cores;
    return cfg;
}

RunResult
runApp(App &app, std::uint32_t threads, const std::string &wlKind,
       graph::CsrGraph &g, std::uint32_t nodeBytes = 32)
{
    Machine m(testConfig(std::max(threads, 2u)));
    g.assignAddresses(m.alloc, nodeBytes);
    app.reset();
    std::unique_ptr<worklist::Worklist> wl;
    if (wlKind == "obim") {
        wl = std::make_unique<worklist::ObimWorklist>(&m, 3, 8, 2);
    } else if (wlKind == "fifo") {
        wl = std::make_unique<worklist::ChunkedWorklist>(
            &m, worklist::ChunkedWorklist::Policy::Fifo, 8, 2);
    } else if (wlKind == "lifo") {
        wl = std::make_unique<worklist::ChunkedWorklist>(
            &m, worklist::ChunkedWorklist::Policy::Lifo, 8, 2);
    } else {
        wl = std::make_unique<worklist::StrictPriorityWorklist>(&m);
    }
    RunConfig cfg;
    cfg.threads = threads;
    RunResult r = runParallel(m, app, *wl, cfg);
    EXPECT_FALSE(r.timedOut) << app.name() << " on " << wlKind;
    return r;
}

TEST(SsspInt, SerialObimVerifies)
{
    graph::CsrGraph g = graph::gridGraph(16, 16, 100, 1);
    apps::SsspApp app(&g, 0, false, 1u << 30, "sssp");
    RunResult r = runApp(app, 1, "obim", g);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.tasks, 0u);
    EXPECT_GT(r.cycles, 0u);
}

TEST(SsspInt, ParallelObimVerifies)
{
    graph::CsrGraph g = graph::gridGraph(24, 24, 100, 2);
    apps::SsspApp app(&g, 0, false, 1u << 30, "sssp");
    RunResult r = runApp(app, 4, "obim", g);
    EXPECT_TRUE(r.verified);
}

TEST(SsspInt, ParallelFifoVerifiesButDoesMoreWork)
{
    graph::CsrGraph g = graph::gridGraph(24, 24, 100, 2);
    apps::SsspApp appA(&g, 0, false, 1u << 30, "sssp");
    RunResult obim = runApp(appA, 4, "obim", g);
    apps::SsspApp appB(&g, 0, false, 1u << 30, "sssp");
    RunResult fifo = runApp(appB, 4, "fifo", g);
    EXPECT_TRUE(obim.verified);
    EXPECT_TRUE(fifo.verified);
    // Priority order improves work efficiency (Section 3.1).
    EXPECT_LT(obim.tasks, fifo.tasks);
}

TEST(SsspInt, StrictPriorityVerifies)
{
    graph::CsrGraph g = graph::gridGraph(12, 12, 50, 3);
    apps::SsspApp app(&g, 0, false, 1u << 30, "sssp");
    RunResult r = runApp(app, 2, "strict", g);
    EXPECT_TRUE(r.verified);
}

TEST(BfsInt, ParallelVerifies)
{
    graph::CsrGraph g = graph::randomGraph(2000, 4.0, 7);
    apps::SsspApp app(&g, 0, true, 1u << 30, "bfs");
    RunResult r = runApp(app, 4, "obim", g);
    EXPECT_TRUE(r.verified);
}

TEST(G500Int, TaskSplittingOnRmatVerifies)
{
    graph::CsrGraph g = graph::rmatGraph(10, 8, 11);
    apps::SsspApp app(&g, 0, true, 256, "g500");
    RunResult r = runApp(app, 4, "obim", g);
    EXPECT_TRUE(r.verified);
    // The hub node must actually have split.
    graph::GraphStats s = graph::analyzeGraph(g);
    EXPECT_GT(s.maxDegree, 256u);
}

TEST(CcInt, ParallelVerifies)
{
    graph::CsrGraph g = graph::powerLawGraph(1500, 6.0, 0.9, 5, true);
    apps::CcApp app(&g, 1u << 30);
    RunResult r = runApp(app, 4, "obim", g);
    EXPECT_TRUE(r.verified);
}

TEST(CcInt, DisconnectedComponents)
{
    // Two disjoint grids glued into one id space.
    graph::GraphBuilder b(20);
    for (NodeId v = 0; v < 9; ++v)
        b.addEdge(v, v + 1);
    for (NodeId v = 10; v < 19; ++v)
        b.addEdge(v, v + 1);
    graph::CsrGraph g = b.symmetrize().build(false);
    apps::CcApp app(&g, 1u << 30);
    RunResult r = runApp(app, 2, "fifo", g);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(app.labels()[5], 0u);
    EXPECT_EQ(app.labels()[15], 10u);
}

TEST(PrInt, ParallelVerifies)
{
    graph::CsrGraph g = graph::powerLawGraph(800, 8.0, 0.9, 13);
    apps::PrApp app(&g, 0.85, 1e-4, 1u << 30);
    RunResult r = runApp(app, 4, "obim", g);
    EXPECT_TRUE(r.verified);
    // PR is the atomic-heavy workload.
    EXPECT_GT(r.atomics, g.numEdges() / 2);
}

TEST(TcInt, ParallelVerifies)
{
    graph::CsrGraph g = graph::wattsStrogatz(400, 6, 0.05, 17);
    apps::TcApp app(&g, 1u << 30);
    RunResult r = runApp(app, 4, "fifo", g, 64);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(app.triangles(), 0u);
    // TC generates no dynamic work.
    EXPECT_EQ(app.counters().pushes, 0u);
}

TEST(BcInt, BipartiteVerifies)
{
    graph::CsrGraph g = graph::bipartiteGraph(300, 200, 4.0, 0.8, 19);
    apps::BcApp app(&g, 1u << 30);
    RunResult r = runApp(app, 4, "fifo", g);
    EXPECT_TRUE(r.verified);
    EXPECT_FALSE(app.conflictFound());
}

TEST(BcInt, OddCycleDetected)
{
    // A triangle is not bipartite.
    graph::GraphBuilder b(3);
    b.addEdge(0, 1);
    b.addEdge(1, 2);
    b.addEdge(2, 0);
    graph::CsrGraph g = b.symmetrize().build(false);
    apps::BcApp app(&g, 1u << 30);
    RunResult r = runApp(app, 2, "fifo", g);
    EXPECT_TRUE(r.verified);
    EXPECT_TRUE(app.conflictFound());
}

TEST(Executor, SerialRelaxedBaselineRuns)
{
    graph::CsrGraph g = graph::gridGraph(16, 16, 100, 1);
    Machine m(testConfig(2));
    g.assignAddresses(m.alloc);
    apps::SsspApp app(&g, 0, false, 1u << 30, "sssp");
    worklist::ObimWorklist wl(&m, 3, 8, 1);
    RunConfig cfg;
    cfg.threads = 1;
    cfg.serialRelaxed = true;
    RunResult r = runParallel(m, app, wl, cfg);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.atomics, 0u); // atomics removed in serial baseline.
}

TEST(Executor, DeterministicAcrossRuns)
{
    auto once = [] {
        graph::CsrGraph g = graph::gridGraph(16, 16, 100, 1);
        Machine m(testConfig(4));
        g.assignAddresses(m.alloc);
        apps::SsspApp app(&g, 0, false, 1u << 30, "sssp");
        worklist::ObimWorklist wl(&m, 3, 8, 2);
        RunConfig cfg;
        cfg.threads = 4;
        return runParallel(m, app, wl, cfg).cycles;
    };
    EXPECT_EQ(once(), once());
}

TEST(Executor, MoreThreadsMoreParallelism)
{
    auto run = [](std::uint32_t threads) {
        graph::CsrGraph g = graph::randomGraph(3000, 4.0, 23);
        Machine m(testConfig(8));
        g.assignAddresses(m.alloc);
        apps::SsspApp app(&g, 0, true, 1u << 30, "bfs");
        worklist::ObimWorklist wl(&m, 2, 8, 2);
        RunConfig cfg;
        cfg.threads = threads;
        RunResult r = runParallel(m, app, wl, cfg);
        EXPECT_TRUE(r.verified);
        return r.cycles;
    };
    Cycle serial = run(1);
    Cycle parallel = run(8);
    EXPECT_LT(parallel, serial)
        << "8 threads should beat 1 thread";
}

TEST(Executor, PhaseBreakdownCovered)
{
    graph::CsrGraph g = graph::gridGraph(16, 16, 100, 1);
    Machine m(testConfig(2));
    g.assignAddresses(m.alloc);
    apps::SsspApp app(&g, 0, false, 1u << 30, "sssp");
    worklist::ObimWorklist wl(&m, 3, 8, 1);
    RunConfig cfg;
    cfg.threads = 2;
    RunResult r = runParallel(m, app, wl, cfg);
    EXPECT_GT(r.phaseCycles[int(cpu::Phase::App)], 0u);
    EXPECT_GT(r.phaseCycles[int(cpu::Phase::Worklist)], 0u);
    EXPECT_GT(r.delinquentLoads, 0u);
    EXPECT_GT(r.allLoads, r.delinquentLoads);
    EXPECT_GT(r.l2Mpki, 0.0);
}

} // anonymous namespace
} // namespace minnow
