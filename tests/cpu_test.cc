/**
 * @file
 * Unit tests for the OOO core limit-study model: dispatch width,
 * ROB/LQ occupancy limits, fences, branch mispredict gating, and the
 * MLP behaviours that Figs. 4-7 of the paper depend on.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cpu/ooo_core.hh"
#include "mem/memory_system.hh"
#include "sim/config.hh"

namespace minnow::cpu
{
namespace
{

struct CoreFixture
{
    explicit CoreFixture(CoreParams p = CoreParams{},
                         std::uint32_t cores = 2)
    {
        cfg = scaledMachine();
        cfg.numCores = cores;
        cfg.core = p;
        mem = std::make_unique<mem::MemorySystem>(cfg);
        core = std::make_unique<OooCore>(0, cfg.core, mem.get(), 1);
    }

    MachineConfig cfg;
    std::unique_ptr<mem::MemorySystem> mem;
    std::unique_ptr<OooCore> core;
};

TEST(SegmentedWindow, BasicPushQuery)
{
    SegmentedWindow w;
    w.push(4, 10);
    w.push(2, 20);
    EXPECT_EQ(w.timeAt(0), 10u);
    EXPECT_EQ(w.timeAt(3), 10u);
    EXPECT_EQ(w.timeAt(4), 20u);
    EXPECT_EQ(w.timeAt(5), 20u);
    EXPECT_EQ(w.tail(), 6u);
}

TEST(SegmentedWindow, MergesEqualTimes)
{
    SegmentedWindow w;
    w.push(2, 5);
    w.push(3, 5);
    EXPECT_EQ(w.timeAt(4), 5u);
}

TEST(SegmentedWindow, BeyondTailIsZero)
{
    SegmentedWindow w;
    w.push(2, 7);
    EXPECT_EQ(w.timeAt(0), 7u);
    EXPECT_EQ(w.timeAt(1), 7u);
    EXPECT_EQ(w.timeAt(2), 0u);
}

TEST(OooCore, DispatchWidthBoundsComputeRate)
{
    CoreFixture f;
    f.core->compute(400, 0);
    // 400 uops at 4/cycle = 100 cycles of frontend time.
    EXPECT_GE(f.core->frontier(), 100u);
    EXPECT_LE(f.core->frontier(), 110u);
    EXPECT_EQ(f.core->stats().uops, 400u);
}

TEST(OooCore, IndependentLoadsOverlap)
{
    CoreFixture f;
    // 8 independent cold loads to distinct lines: completions should
    // overlap heavily rather than serialize.
    Cycle last = 0;
    for (int i = 0; i < 8; ++i)
        last = f.core->load(0x100000 + Addr(i) * 4096);
    Cycle serial = 8 * (last); // loose upper bound sanity input.
    (void)serial;
    // All 8 issued within a few cycles, so the last completion is
    // roughly one memory latency, not eight.
    Cycle one = f.core->load(0x900000);
    EXPECT_LT(last, 2 * one);
}

TEST(OooCore, DependentLoadsSerialize)
{
    CoreFixture f;
    Cycle t1 = f.core->load(0x100000);
    Cycle t2 = f.core->load(0x200000, t1); // pointer chase.
    EXPECT_GT(t2, t1);
    // The dependent load could not even start before t1.
    CoreFixture g;
    Cycle u1 = g.core->load(0x100000);
    Cycle u2 = g.core->load(0x200000); // independent version.
    EXPECT_LT(u2 - u1, t2 - t1);
}

TEST(OooCore, RobLimitsMlp)
{
    // With a tiny ROB, a long run of loads+compute must stall the
    // frontend; with a large ROB it keeps streaming.
    CoreParams small;
    small.robEntries = 16;
    small.rsEntries = 16;
    small.lqEntries = 8;
    small.sqEntries = 8;
    CoreParams big;
    big.robEntries = 1024;
    big.rsEntries = 512;
    big.lqEntries = 512;
    big.sqEntries = 256;

    auto run = [](CoreParams p) {
        CoreFixture f(p);
        for (int i = 0; i < 64; ++i) {
            f.core->load(0x100000 + Addr(i) * 4096);
            f.core->compute(10, 0);
        }
        return f.core->drain();
    };
    EXPECT_GT(run(small), run(big));
}

TEST(OooCore, LoadQueueLimitsOutstandingLoads)
{
    CoreParams p;
    p.lqEntries = 2;
    CoreFixture f(p);
    // With LQ=2 the third load cannot allocate until the first
    // completes, so issue times spread out by full memory latencies.
    Cycle t1 = f.core->load(0x100000);
    f.core->load(0x200000);
    f.core->load(0x300000);
    EXPECT_GE(f.core->frontier(), t1);
}

TEST(OooCore, FencesSerializeAtomics)
{
    CoreParams fenced;
    fenced.atomicFences = true;
    CoreParams unfenced;
    unfenced.atomicFences = false;

    auto run = [](CoreParams p) {
        CoreFixture f(p);
        for (int i = 0; i < 16; ++i) {
            f.core->load(0x100000 + Addr(i) * 4096);
            f.core->atomic(0x800000 + Addr(i) * 4096);
        }
        return f.core->drain();
    };
    Cycle withFence = run(fenced);
    Cycle withoutFence = run(unfenced);
    EXPECT_GT(withFence, withoutFence);
}

TEST(OooCore, FenceStallsAreCounted)
{
    CoreFixture f;
    f.core->load(0x100000);
    f.core->atomic(0x200000);
    EXPECT_GT(f.core->stats().fenceStallCycles, 0u);
}

TEST(OooCore, MispredictGatesIssue)
{
    CoreParams always;
    always.dataMispredictRate = 1.0;
    CoreParams never;
    never.dataMispredictRate = 0.0;

    auto run = [](CoreParams p) {
        CoreFixture f(p);
        for (int i = 0; i < 16; ++i) {
            Cycle v = f.core->load(0x100000 + Addr(i) * 4096);
            f.core->branch(BranchKind::DataDependent, v);
        }
        return f.core->drain();
    };
    EXPECT_GT(run(always), run(never));
}

TEST(OooCore, PerfectBranchesIgnoreRate)
{
    CoreParams p;
    p.dataMispredictRate = 1.0;
    p.perfectBranches = true;
    CoreFixture f(p);
    for (int i = 0; i < 16; ++i) {
        Cycle v = f.core->load(0x100000 + Addr(i) * 4096);
        f.core->branch(BranchKind::DataDependent, v);
    }
    EXPECT_EQ(f.core->stats().mispredicts, 0u);
}

TEST(OooCore, MispredictsAreDeterministic)
{
    auto run = [] {
        CoreParams p;
        p.dataMispredictRate = 0.5;
        CoreFixture f(p);
        for (int i = 0; i < 100; ++i)
            f.core->branch(BranchKind::DataDependent, 0);
        return f.core->stats().mispredicts;
    };
    EXPECT_EQ(run(), run());
}

TEST(OooCore, CheapLoadsCountButHitL1)
{
    CoreFixture f;
    f.core->cheapLoads(10);
    EXPECT_EQ(f.core->stats().cheapLoads, 10u);
    EXPECT_EQ(f.core->stats().loads, 10u);
    EXPECT_EQ(f.mem->totals().loads, 0u); // never reached the caches.
}

TEST(OooCore, DelinquentLoadsTracked)
{
    CoreFixture f;
    LoadInfo delinquent;
    delinquent.delinquent = true;
    f.core->load(0x100000, 0, delinquent);
    f.core->load(0x200000);
    f.core->cheapLoads(8);
    EXPECT_EQ(f.core->stats().delinquentLoads, 1u);
    EXPECT_EQ(f.core->stats().loads, 10u);
}

TEST(OooCore, IdleUntilAdvancesFrontier)
{
    CoreFixture f;
    f.core->compute(4, 0);
    f.core->idleUntil(5000);
    EXPECT_GE(f.core->frontier(), 5000u);
}

TEST(OooCore, PhaseAttribution)
{
    CoreFixture f;
    f.core->setPhase(Phase::Worklist);
    f.core->compute(100, 0);
    f.core->setPhase(Phase::App);
    f.core->compute(200, 0);
    const CoreStats &st = f.core->stats();
    EXPECT_GT(st.phases[int(Phase::Worklist)].cycles, 0u);
    EXPECT_GT(st.phases[int(Phase::App)].cycles,
              st.phases[int(Phase::Worklist)].cycles);
    EXPECT_EQ(st.phases[int(Phase::Worklist)].uops, 100u);
    EXPECT_EQ(st.phases[int(Phase::App)].uops, 200u);
}

TEST(OooCore, DrainCoversOutstandingWork)
{
    CoreFixture f;
    Cycle done = f.core->load(0x100000);
    EXPECT_GE(f.core->drain(), done);
    EXPECT_LE(f.core->frontier(), done); // frontend ran ahead.
}

TEST(OooCore, BiggerRobHelpsOnlyWithoutSerialization)
{
    // The Fig. 4 story in miniature: with realistic branches+fences,
    // growing the ROB 4x barely helps; with both removed, it does.
    auto run = [](std::uint32_t rob, bool ideal) {
        CoreParams p;
        p.robEntries = rob;
        p.rsEntries = rob / 2;
        p.lqEntries = rob / 4;
        p.sqEntries = rob / 4;
        p.perfectBranches = ideal;
        p.atomicFences = !ideal;
        p.dataMispredictRate = 0.3;
        CoreFixture f(p);
        for (int i = 0; i < 128; ++i) {
            Cycle v = f.core->load(0x100000 + Addr(i) * 4096);
            f.core->branch(BranchKind::DataDependent, v);
            f.core->atomic(0x800000 + Addr(i) * 256);
            f.core->compute(8, 0);
        }
        return f.core->drain();
    };
    double realisticGain = double(run(64, false)) / run(256, false);
    double idealGain = double(run(64, true)) / run(256, true);
    EXPECT_GT(idealGain, realisticGain);
}

} // anonymous namespace
} // namespace minnow::cpu
