/**
 * @file
 * Tests for the causal-attribution layer (mem/attribution.hh):
 * lifecycle classification at the unit level (late prefetches cover
 * stall cycles, early-evicted and polluting fills are both charged,
 * redundant issues counted, pollution windows expire), lineage id
 * conservation through push/enqueue/dequeue including kill/rescue
 * drains, and the determinism contract (attribution stats are
 * byte-identical across shard counts and across a checkpoint
 * save/restore boundary).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "base/stats.hh"
#include "harness/workloads.hh"
#include "mem/attribution.hh"

namespace minnow
{
namespace
{

using mem::Attribution;

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "minnow_attr_test_" + name;
}

/** Pull one numeric stat value out of a stats JSON string. */
double
statValue(const std::string &json, const std::string &key)
{
    std::string needle = "\"" + key + "\":";
    std::size_t pos = json.find(needle);
    EXPECT_NE(pos, std::string::npos) << "missing stat " << key;
    if (pos == std::string::npos)
        return -1;
    return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

// ---------------------------------------------------------------
// Unit-level lifecycle classification.
// ---------------------------------------------------------------

TEST(AttributionPrefetch, LateUseCoversStallCycles)
{
    StatsRegistry reg;
    Attribution at(reg, nullptr, 2, 1000);

    // Issued at 100, fills at 300, demanded at 200: the demand hit
    // under the fill, so the class is late and the prefetch covered
    // demand - issue = 100 stall cycles (the miss would otherwise
    // have started at the demand).
    at.prefetchFilled(0, 5, 100, 300, 0, false);
    EXPECT_EQ(at.trackedLines(), 1u);
    at.prefetchDemandUse(0, 5, 200, true);
    EXPECT_EQ(at.counts().late, 1u);
    EXPECT_EQ(at.counts().timely, 0u);
    EXPECT_EQ(at.stallCyclesCovered(), 100u);
    EXPECT_EQ(at.trackedLines(), 0u);
}

TEST(AttributionPrefetch, TimelyUseAfterFill)
{
    StatsRegistry reg;
    Attribution at(reg, nullptr, 2, 1000);

    at.prefetchFilled(1, 6, 100, 150, 0, false);
    at.prefetchDemandUse(1, 6, 400, false);
    EXPECT_EQ(at.counts().timely, 1u);
    EXPECT_EQ(at.counts().late, 0u);
    EXPECT_EQ(at.stallCyclesCovered(), 0u);
}

TEST(AttributionPrefetch, EarlyEvictedAndPollutingBothCharged)
{
    StatsRegistry reg;
    Attribution at(reg, nullptr, 2, 1000);

    // A prefetch fill displaces victim line 99, then is itself
    // evicted before use: the fill is charged early-evicted, and
    // when the victim demand-misses inside the window the same fill
    // is charged polluting too. Both classes must land.
    at.prefetchFilled(0, 7, 10, 20, 0, false);
    at.fillVictim(0, 99, 20);
    at.prefetchEvicted(0, 7);
    EXPECT_EQ(at.counts().earlyEvicted, 1u);

    at.demandMiss(0, 99, 50);
    EXPECT_EQ(at.counts().polluting, 1u);

    // The early-evicted line demand-missing again inside the window
    // is the cost of that eviction (missAfterEvict).
    at.demandMiss(0, 7, 60);
    EXPECT_EQ(at.missAfterEvict(), 1u);
    EXPECT_EQ(at.demandMisses(), 2u);
}

TEST(AttributionPrefetch, PollutionWindowExpires)
{
    StatsRegistry reg;
    Attribution at(reg, nullptr, 2, 100);

    at.prefetchFilled(0, 8, 5, 10, 0, false);
    at.fillVictim(0, 42, 10);
    // 10 + 100 < 200: the victim entry expired before the re-miss,
    // so nothing is charged.
    at.demandMiss(0, 42, 200);
    EXPECT_EQ(at.counts().polluting, 0u);
}

TEST(AttributionPrefetch, RedundantIssuesCounted)
{
    StatsRegistry reg;
    Attribution at(reg, nullptr, 4, 1000);

    at.prefetchRedundant(0);
    at.prefetchRedundant(0);
    at.prefetchRedundant(3);
    EXPECT_EQ(at.counts().redundant, 3u);
}

// ---------------------------------------------------------------
// Lineage id conservation.
// ---------------------------------------------------------------

TEST(AttributionLineage, PushEnqueueDequeueDrains)
{
    StatsRegistry reg;
    Attribution at(reg, nullptr, 2, 1000);

    std::uint64_t a = at.pushTask(0, 10);
    std::uint64_t b = at.pushTask(1, 12);
    std::uint64_t c = at.pushTask(0, 14);
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    EXPECT_NE(c, 0u);
    EXPECT_EQ(at.liveLineage(), 3u);

    at.taskEnqueued(a, 20);
    at.taskEnqueued(b, 22);
    // c is never enqueued (spill path): dequeue must still drain it.

    at.taskDequeued(1, a, 50);
    at.taskDequeued(0, b, 55);
    EXPECT_EQ(at.liveLineage(), 1u);
    at.taskDequeued(1, c, 60);
    EXPECT_EQ(at.liveLineage(), 0u);

    // Lineage 0 (seeds, attribution-off items) never tracks.
    at.taskDequeued(0, 0, 70);
    EXPECT_EQ(at.liveLineage(), 0u);
}

// ---------------------------------------------------------------
// Full-run contracts (harness-level).
// ---------------------------------------------------------------

harness::RunSpec
attrSpec(std::uint32_t shards)
{
    harness::RunSpec spec;
    spec.config = harness::Config::MinnowPf;
    spec.threads = 8;
    spec.machine.numCores = 8;
    spec.machine.shards = shards;
    spec.machine.attribution = true;
    return spec;
}

TEST(AttributionRun, KillRescueDrainsWithoutIdLeaks)
{
    harness::Workload w = harness::makeWorkload("sssp", 0.05, 7);
    harness::RunSpec spec = attrSpec(1);
    spec.machine.faultSpec =
        "engine_kill:core=0,at=5000;engine_stall:core=3,at=8000,"
        "dur=20000";
    auto r = harness::runExperiment(w, spec);
    EXPECT_TRUE(r.run.verified);
    const std::string &json = r.run.statsJson;
    EXPECT_GT(statValue(json, "lineageAssigned"), 0.0);
    // Every id assigned at a push is drained at a pop even when
    // kill/rescue reroutes items through the global queue and the
    // software fallback path.
    EXPECT_EQ(statValue(json, "lineageLive"), 0.0);
    EXPECT_EQ(statValue(json, "lineageAssigned"),
              statValue(json, "lineageDequeued"));
}

TEST(AttributionRun, StatsByteIdenticalAcrossShards)
{
    harness::Workload w = harness::makeWorkload("sssp", 0.05, 7);
    auto one = harness::runExperiment(w, attrSpec(1));
    auto four = harness::runExperiment(w, attrSpec(4));
    EXPECT_TRUE(one.run.verified);
    EXPECT_FALSE(one.run.statsJson.empty());
    EXPECT_EQ(one.run.statsJson, four.run.statsJson);
}

TEST(AttributionRun, StatsByteIdenticalAcrossCheckpoint)
{
    harness::Workload w = harness::makeWorkload("sssp", 0.05, 7);
    auto cold = harness::runExperiment(w, attrSpec(1));
    ASSERT_TRUE(cold.run.verified);

    std::string path = tmpPath("warm.ckpt");
    harness::RunSpec save = attrSpec(1);
    save.checkpointOut = path;
    auto saved = harness::runExperiment(w, save);
    EXPECT_EQ(cold.run.statsJson, saved.run.statsJson);

    harness::RunSpec restore = attrSpec(1);
    restore.checkpointIn = path;
    auto warm = harness::runExperiment(w, restore);
    EXPECT_TRUE(warm.run.verified);
    EXPECT_EQ(cold.run.statsJson, warm.run.statsJson);
    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace minnow
