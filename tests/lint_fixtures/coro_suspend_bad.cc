// Seeded violations for the `coro-suspend-safety` rule: state that
// points into someone else's storage, cached before a co_await and
// touched after it. While a coroutine is suspended any other
// threadlet may run, so the referent can move, shrink, or die.
// Conforming twins in coro_suspend_ok.cc.

#include <vector>

namespace fixture
{

template <typename T>
struct CoTask
{
};

struct Awaitable
{
};

struct SimContext
{
    Awaitable sync();
    unsigned id() const;
    void schedule(unsigned long long when, void (*fn)(void *),
                  void *arg);
};

struct Slot
{
    int pending = 0;
    void touch();
};

struct ScratchBuffer
{
    void clear();
    int take();
};

class SuspendHazards
{
  public:
    CoTask<void> elementRefAcross(SimContext &ctx);
    CoTask<void> refParamAcross(SimContext &ctx, ScratchBuffer &buf);
    CoTask<void> lambdaEscapes(SimContext &ctx);
    CoTask<void> lambdaStored(SimContext &ctx);
    CoTask<void> detachedChild(SimContext &ctx);
    CoTask<void> childTask(int *counter);

  private:
    void adopt(CoTask<void> task);
    std::vector<Slot> slots_;
    void (*retry_)() = nullptr;
};

CoTask<void>
SuspendHazards::elementRefAcross(SimContext &ctx)
{
    // finding: element reference read after the suspension — the
    // vector can reallocate while this coroutine is parked.
    Slot &s = slots_[ctx.id()];
    co_await ctx.sync();
    s.touch();
}

CoTask<void>
// finding on the next line: by-ref parameter read after suspension.
SuspendHazards::refParamAcross(SimContext &ctx, ScratchBuffer &buf)
{
    co_await ctx.sync();
    buf.clear();
}

CoTask<void>
SuspendHazards::lambdaEscapes(SimContext &ctx)
{
    int budget = 4;
    // finding: by-ref lambda passed to a scheduling sink outlives
    // the frame's suspension.
    ctx.schedule(10, [&](void *) { budget -= 1; }, nullptr);
    co_await ctx.sync();
    co_return;
}

CoTask<void>
SuspendHazards::lambdaStored(SimContext &ctx)
{
    int credits = 2;
    // finding: by-ref lambda kept in a local and invoked after the
    // suspension; `credits` may be gone by then in real code shapes
    // (the lambda can also escape through the local).
    auto replay = [&] { credits += 1; };
    co_await ctx.sync();
    replay();
}

CoTask<void>
SuspendHazards::detachedChild(SimContext &ctx)
{
    int outstanding = 0;
    // finding: &outstanding handed to a CoTask that is never
    // co_awaited here; the detached child keeps a frame pointer.
    adopt(childTask(&outstanding));
    co_await ctx.sync();
    co_return;
}

CoTask<void>
SuspendHazards::childTask(int *counter)
{
    *counter += 1;
    co_return;
}

} // namespace fixture
