#!/usr/bin/env python3
"""Unit test for the minnow-lint ProjectModel (tier-1, wired into
ctest as `minnow_lint_project_model`).

Builds a synthetic two-file project in memory — no filesystem, no
golden files — and asserts the whole-program facts every
check_project rule leans on: the function index, call-graph edges
(same-class preference and the conservative overload-set fallback),
include-edge resolution, layer assignment, cycle detection, the
return-value taint closure, and class-restricted reachability.
"""

import os
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))), "tools", "lint"))

from minnow_lint.tokenizer import tokenize
from minnow_lint.cpp_model import build_model
from minnow_lint.project import ProjectModel, Layers

BASE_HH = """
#include "apps/tool.cc"

unsigned long long hostNowNs();

unsigned long long rawStamp() { return hostNowNs(); }

unsigned long long cookedStamp() { return rawStamp() / 2; }

void log(int) {}

class Helper
{
  public:
    void log(int) {}
    void tick() { log(1); step(); }
    void step() { finish(); }
    void finish() {}
};
"""

TOOL_CC = """
#include "base/util.hh"

void log(long) {}

void consume(unsigned long long);

void drive() { consume(cookedStamp()); }

void spray() { log(2L); }
"""

FAILURES = []


def check(cond, what):
    if not cond:
        FAILURES.append(what)


def build():
    models = []
    for path, text in (("src/base/util.hh", BASE_HH),
                       ("src/apps/tool.cc", TOOL_CC)):
        toks, comments, pp = tokenize(text, path)
        models.append(build_model(path, toks, comments, pp))
    layers = Layers(
        names=["base", "apps"],
        dirs=[("src/base", "base"), ("src/apps", "apps")])
    return ProjectModel(models, layers)


def key_of(pm, qual):
    matches = [k for k, fi in pm.functions.items() if fi.qual == qual]
    check(len(matches) == 1,
          "expected exactly one %r, got %r" % (qual, matches))
    return matches[0] if matches else None


def main():
    pm = build()

    # Function index: both files' definitions, qualified.
    for qual in ("rawStamp", "cookedStamp", "Helper::tick",
                 "Helper::step", "Helper::finish", "Helper::log",
                 "drive", "spray"):
        check(pm.funcs_named(qual.split("::")[-1]),
              "function %r missing from index" % qual)
    tick = key_of(pm, "Helper::tick")
    step = key_of(pm, "Helper::step")
    finish = key_of(pm, "Helper::finish")
    helper_log = key_of(pm, "Helper::log")

    # Same-class preference: Helper::tick's bare log(1) binds ONLY
    # to Helper::log, not the two free log overloads.
    tick_callees = pm.functions[tick].callees
    log_targets = {k for k in tick_callees
                   if pm.functions[k].name == "log"}
    check(log_targets == {helper_log},
          "tick's log() should bind same-class only, got %r"
          % sorted(log_targets))

    # Overload-set fallback: spray's bare log(2L) has no same-class
    # candidate, so it binds to EVERY definition named log.
    spray = key_of(pm, "spray")
    spray_logs = {k for k in pm.functions[spray].callees
                  if pm.functions[k].name == "log"}
    check(len(spray_logs) == 3,
          "spray's log() should bind the whole overload set (3), "
          "got %d" % len(spray_logs))

    # Class-restricted reachability: tick -> step -> finish, two
    # edges deep, while a depth-1 walk stops short.
    reach = pm.reachable_from(tick, max_depth=6, same_class="Helper")
    check(finish in reach, "finish not reachable from tick")
    check(finish not in pm.reachable_from(tick, max_depth=1),
          "depth-1 walk should not reach finish")

    # func_of: Method object -> FuncInfo identity.
    fi = pm.functions[tick]
    check(pm.func_of(fi.method) is fi, "func_of lost identity")

    # Include edges resolve by path suffix; both directions resolve,
    # which is also the synthetic cycle.
    resolved = {(e.from_path, e.to_path)
                for e in pm.include_edges if e.to_path}
    check(("src/base/util.hh", "src/apps/tool.cc") in resolved,
          "base -> apps include did not resolve")
    check(("src/apps/tool.cc", "src/base/util.hh") in resolved,
          "apps -> base include did not resolve")
    cycles = pm.include_cycles()
    check(len(cycles) == 1 and
          sorted(cycles[0]) == ["src/apps/tool.cc",
                                "src/base/util.hh"],
          "expected exactly the two-file cycle, got %r" % cycles)

    # Layer assignment: names and levels, and the backward edge is
    # visible as to_level > from_level.
    check(pm.layers.layer_of("src/base/util.hh") == ("base", 0),
          "base layer assignment wrong")
    check(pm.layers.layer_of("src/apps/tool.cc") == ("apps", 1),
          "apps layer assignment wrong")
    check(pm.layers.layer_of("src/unmapped/x.cc") == (None, None),
          "unmapped path should be unlayered")
    _, from_lvl = pm.layers.layer_of("src/base/util.hh")
    _, to_lvl = pm.layers.layer_of("src/apps/tool.cc")
    check(to_lvl > from_lvl, "backward edge not detectable")

    # Taint closure: rawStamp (returns a source) is depth 1,
    # cookedStamp (returns rawStamp()) is depth 2, and drive (calls
    # a tainted function but returns nothing) is NOT in the closure.
    closure = pm.taint_closure({"hostNowNs"}, max_depth=3)
    by_name = {pm.functions[k].name: d for k, d in closure.items()}
    check(by_name.get("rawStamp") == 1,
          "rawStamp should be depth-1 tainted, got %r" % by_name)
    check(by_name.get("cookedStamp") == 2,
          "cookedStamp should be depth-2 tainted, got %r" % by_name)
    check("drive" not in by_name,
          "drive returns nothing and must not carry taint")

    # Summary block: counts consistent with the model.
    s = pm.summary()
    check(s["files"] == 2 and s["layers"] == 2 and
          s["layered_files"] == 2,
          "summary file/layer counts wrong: %r" % s)
    check(s["functions"] == len(pm.functions) and
          s["include_edges"] == len(pm.include_edges),
          "summary graph counts wrong: %r" % s)

    if FAILURES:
        print("project model test FAILED:")
        for f in FAILURES:
            print(" -", f)
        return 1
    print("project model test passed: %d functions, %d call edges, "
          "%d include edges" % (s["functions"], s["call_edges"],
                                s["include_edges"]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
