// Conforming twin for the `serializer-coverage` rule: every member
// is serialized, declared transient, or waived with LINT-OK.

#ifndef FIXTURE_SERIALIZER_COVERAGE_OK_HH
#define FIXTURE_SERIALIZER_COVERAGE_OK_HH

namespace fixture
{

namespace ckpt
{
class Ckpt;
}

class CoveredComponent
{
  public:
    void
    checkpoint(ckpt::Ckpt &ck)
    {
        ck.io(cursor_);
        ck.io(history_);
        // Host pointers and derived caches are rebuilt, never
        // serialized — but the decision must be visible.
        ck.transient("scratch_ cachedSum_");
    }

  private:
    unsigned long long cursor_ = 0;
    unsigned long long history_ = 0;
    void *scratch_ = nullptr;
    unsigned long long cachedSum_ = 0;
    // Static members carry no per-object state.
    static constexpr unsigned kWays = 4;
    // A member covered through a helper the rule cannot see may be
    // waived per line, with a reason.
    // LINT-OK(serializer-coverage): serialized via a packed helper
    unsigned long long viaHelper_ = 0;
};

} // namespace fixture

#endif
