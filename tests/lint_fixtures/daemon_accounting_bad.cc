// Seeded violations for the `daemon-accounting` rule: a periodic
// self-rearming event using none of the daemon protocol and an
// empty() guard (the mutual-keepalive hang).

namespace fixture
{

class EventQueue
{
  public:
    unsigned long long now() const;
    bool empty() const;
    void schedule(unsigned long long when, void (*fn)(void *),
                  void *arg);
};

class BadSampler
{
  public:
    void start();

  private:
    static void sampleEvent(void *arg);

    EventQueue *eq_ = nullptr;
    unsigned long long interval_ = 1000;
};

void
BadSampler::start()
{
    // finding: arms a daemon with no daemonScheduled().
    eq_->schedule(eq_->now() + interval_, &BadSampler::sampleEvent,
                  this);
}

void
BadSampler::sampleEvent(void *arg)
{
    // findings: no daemonFired(); re-arm guarded by empty() instead
    // of quiescent(); re-arm site lacks daemonScheduled().
    auto *s = static_cast<BadSampler *>(arg);
    if (!s->eq_->empty()) {
        s->eq_->schedule(s->eq_->now() + s->interval_,
                         &BadSampler::sampleEvent, s);
    }
}

} // namespace fixture
