// Seeded violations for the `determinism` rule. Each marked line
// must appear in expected.txt; run_fixtures.py diffs the analyzer
// output against it.

#include <cstdlib>
#include <chrono>
#include <map>

namespace fixture
{

int
rollDice()
{
    return rand() % 6; // finding: hidden process-global state
}

long long
stamp()
{
    // finding on the next line: host wall clock
    auto t = std::chrono::system_clock::now();
    return t.time_since_epoch().count();
}

const char *
homeDir()
{
    return getenv("HOME"); // finding: ambient environment
}

struct ObjectTable
{
    // finding: pointer-keyed ordered container iterates in
    // allocation-address order.
    std::map<void *, int> byObject;
};

} // namespace fixture
