// Conforming twin of stats_lifetime_bad.hh: zero findings. Shows
// both sanctioned shapes: the attach/remove pattern (worklist.hh)
// and registration into a registry the class owns by value.

#ifndef FIXTURE_STATS_LIFETIME_OK_HH
#define FIXTURE_STATS_LIFETIME_OK_HH

namespace fixture
{

class StatsGroup;

class StatsRegistry
{
  public:
    StatsGroup &freshGroup(const char *name);
    void removeGroup(const char *name);
};

class TidyComponent
{
  public:
    void
    attachStats(StatsRegistry &reg)
    {
        statsReg_ = &reg;
        reg.freshGroup("tidy");
    }

    ~TidyComponent()
    {
        if (statsReg_)
            statsReg_->removeGroup("tidy");
    }

  private:
    StatsRegistry *statsReg_ = nullptr;
};

// A destructor that reaches removeGroup through a helper also
// counts (one level of indirection).
class IndirectComponent
{
  public:
    void
    attachStats(StatsRegistry &reg)
    {
        statsReg_ = &reg;
        reg.freshGroup("indirect");
    }

    ~IndirectComponent() { detachStats(); }

  private:
    void
    detachStats()
    {
        if (statsReg_)
            statsReg_->removeGroup("indirect");
    }

    StatsRegistry *statsReg_ = nullptr;
};

// Registering into a registry this class owns by value: the groups
// cannot outlive the component, so no removal is needed.
class OwningMachine
{
  public:
    void
    setup()
    {
        stats.freshGroup("own");
    }

  private:
    StatsRegistry stats;
};

} // namespace fixture

#endif
