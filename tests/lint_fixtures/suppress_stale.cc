// Suppression hygiene violations: a LINT-OK that silences nothing
// (stale), one naming an unknown rule, and one without a reason.

namespace fixture
{

int
cleanFunction()
{
    // LINT-OK(determinism): nothing here violates it -> stale
    return 42;
}

int
moreCleanCode()
{
    // LINT-OK(not-a-rule): unknown rule id -> bad-suppression
    return 7;
}

int
reasonless()
{
    // LINT-OK(trace-format)
    return 0;
}

} // namespace fixture
