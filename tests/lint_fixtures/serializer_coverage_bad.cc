// Out-of-line checkpoint() definition for SplitComponent; together
// with serializer_coverage_bad.hh this seeds the stem-merged case
// (member declared in the header, visitor defined here).

#include "serializer_coverage_bad.hh"

namespace fixture
{

void
SplitComponent::checkpoint(ckpt::Ckpt &ck)
{
    ck.io(saved_);
}

} // namespace fixture
