// Conforming twin of trace_format_bad.cc: zero findings. Covers
// the spec-parser corners: %%, * width/precision, length
// modifiers, adjacent-literal concatenation, and runtime format
// expressions (skipped, not guessed at).

namespace fixture
{

void
emit(int a, int b, const char *name, const char *fmt)
{
    DPRINTF(Engine, "engine", "a=%d b=%d\n", a, b);
    warn("progress %d%%\n", a);
    panic_if(a > b, "bad pair %d/%s", a, name);
    DPRINTF(Engine, "engine", "padded %*d prec %.*f\n", a, b, a,
            1.0);
    warn("long value %lld"
         " continued %s\n",
         0LL, name);
    // Runtime format string: not checkable at token level, skipped.
    warn(fmt, a, b);
}

} // namespace fixture
