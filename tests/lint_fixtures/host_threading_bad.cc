// Seeded violations for the `host-threading` rule (P1): raw host
// concurrency primitives outside sim/parallel/. Each marked line
// must appear in expected.txt; run_fixtures.py diffs the analyzer
// output against it.

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace fixture
{

struct SideChannel
{
    std::mutex lock;                  // finding: blocking state
    std::condition_variable ready;    // finding: blocking signaling
    std::atomic<int> counter{0};      // finding: lock-free state
};

void
spawnHelper(SideChannel &ch)
{
    std::thread t([&ch] {             // finding: host thread
        std::lock_guard<std::mutex> g(ch.lock); // 2 findings
        ch.counter.store(1);
    });
    t.join();
}

void
rawPthread(void *(*fn)(void *))
{
    // finding on the next line: raw pthreads, no std:: needed
    pthread_create(nullptr, nullptr, fn, nullptr);
}

} // namespace fixture
