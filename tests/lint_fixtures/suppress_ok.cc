// A real violation silenced by a well-formed LINT-OK: zero
// findings, and the suppression is counted as used (not stale).

#include <cstdlib>

namespace fixture
{

int
chaosForTesting()
{
    // LINT-OK(determinism): fixture shows a sanctioned suppression
    return rand();
}

const char *
envProbe()
{
    return getenv("TERM"); // LINT-OK(determinism): trailing style
}

} // namespace fixture
