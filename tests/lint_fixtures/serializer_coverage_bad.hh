// Seeded violations for the `serializer-coverage` rule: a class
// defining a checkpoint() visitor whose member list has drifted —
// one member is neither serialized nor declared transient.

#ifndef FIXTURE_SERIALIZER_COVERAGE_BAD_HH
#define FIXTURE_SERIALIZER_COVERAGE_BAD_HH

namespace fixture
{

namespace ckpt
{
class Ckpt;
}

class DriftedComponent
{
  public:
    void
    checkpoint(ckpt::Ckpt &ck)
    {
        ck.io(cursor_);
        ck.transient("scratch_");
    }

  private:
    unsigned long long cursor_ = 0;
    void *scratch_ = nullptr;
    // finding: added after the visitor was written; a restored
    // object would silently keep the constructed value.
    unsigned long long addedLater_ = 0;
};

// Out-of-line visitors must see the header's member list too.
class SplitComponent
{
  public:
    void checkpoint(ckpt::Ckpt &ck);

  private:
    unsigned long long saved_ = 0;
    // finding: missing from the .cc definition of checkpoint().
    unsigned long long missed_ = 0;
};

} // namespace fixture

#endif
