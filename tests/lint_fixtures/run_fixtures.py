#!/usr/bin/env python3
"""Golden-diff driver for the minnow-lint fixture suite (tier-1,
wired into ctest as `minnow_lint_fixtures`).

Checks, in order:

 1. linting the whole fixture directory finds EXACTLY the (path,
    line, rule) triples in expected.txt — a missed seeded violation
    and a new false positive both fail;
 2. the --json output carries the documented schema (minnow-lint-2;
    the pre-ProjectModel minnow-lint-1 is rejected with its own
    message so a consumer pinned to the old schema fails loudly,
    not with a generic mismatch), a `graph` block describing the
    whole-program model, and a count consistent with the findings
    list, and the process exits 1;
 3. every production rule and both meta rules are exercised by at
    least one fixture finding;
 4. the conforming fixtures alone (including the used-suppression
    file and the layers/ subtree's clean half) lint clean with
    exit 0.
"""

import json
import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(os.path.dirname(HERE))
LINT = os.path.join(ROOT, "tools", "lint", "minnow-lint.py")
FIXDIR = os.path.relpath(HERE, ROOT)

SCHEMA = "minnow-lint-2"
OLD_SCHEMAS = {"minnow-lint-1"}

EXPECTED_RULES = {
    "determinism", "unordered-export", "coroutine-order",
    "stats-lifetime", "daemon-accounting", "trace-format",
    "serializer-coverage", "host-threading",
    "coro-suspend-safety", "determinism-taint", "layer-dag",
    "stale-suppression", "bad-suppression",
}

GRAPH_KEYS = ("files", "functions", "call_edges", "include_edges",
              "layers", "layered_files")


def run_lint(paths):
    proc = subprocess.run(
        [sys.executable, LINT, "--root", ROOT, "--json"] + paths,
        capture_output=True, text=True)
    if proc.returncode == 2:
        raise SystemExit("FAIL: analyzer error:\n" + proc.stderr)
    return proc.returncode, json.loads(proc.stdout)


def check_schema(doc, failures):
    schema = doc.get("schema")
    if schema in OLD_SCHEMAS:
        failures.append(
            "analyzer still emits retired schema %r; the "
            "ProjectModel output format is %r (graph block, "
            "whole-program rules) — do not silently downgrade"
            % (schema, SCHEMA))
        return
    if schema != SCHEMA:
        failures.append("schema is %r, want %r" % (schema, SCHEMA))


def check_graph(doc, failures):
    graph = doc.get("graph")
    if not isinstance(graph, dict):
        failures.append("--json output lacks the 'graph' block")
        return
    for key in GRAPH_KEYS:
        if not isinstance(graph.get(key), int):
            failures.append("graph block lacks integer %r: %r"
                            % (key, graph.get(key)))
    if graph.get("files") != doc.get("files_scanned"):
        failures.append("graph.files %r != files_scanned %r"
                        % (graph.get("files"),
                           doc.get("files_scanned")))
    # The fixture project is small but never degenerate: it has
    # calls, resolved includes (the layers/ subtree), and layered
    # files, so a ProjectModel silently going empty fails here.
    for key in ("functions", "call_edges", "include_edges",
                "layered_files"):
        if not graph.get(key, 0) > 0:
            failures.append("graph.%s is %r; the fixture project "
                            "must exercise the whole-program model"
                            % (key, graph.get(key)))


def main():
    failures = []

    # 1 + 2: full fixture directory against the golden set.
    rc, doc = run_lint([FIXDIR])
    check_schema(doc, failures)
    for key in ("version", "findings", "count", "files_scanned"):
        if key not in doc:
            failures.append("--json output lacks %r" % key)
    check_graph(doc, failures)
    if doc.get("count") != len(doc.get("findings", [])):
        failures.append("count %r != len(findings) %d"
                        % (doc.get("count"),
                           len(doc.get("findings", []))))
    for f in doc.get("findings", []):
        for key in ("path", "line", "rule", "message"):
            if key not in f:
                failures.append("finding lacks %r: %r" % (key, f))
    if rc != 1:
        failures.append("exit code on violating fixtures is %d, "
                        "want 1" % rc)

    got = sorted("%s:%d %s" % (f["path"], f["line"], f["rule"])
                 for f in doc.get("findings", []))
    with open(os.path.join(HERE, "expected.txt")) as fh:
        want = sorted(line.strip() for line in fh
                      if line.strip() and not line.startswith("#"))
    if got != want:
        missing = [w for w in want if w not in got]
        surplus = [g for g in got if g not in want]
        if missing:
            failures.append("seeded violations NOT caught:\n  " +
                            "\n  ".join(missing))
        if surplus:
            failures.append("unexpected findings:\n  " +
                            "\n  ".join(surplus))

    # 3: coverage — every rule must be exercised.
    seen_rules = {f["rule"] for f in doc.get("findings", [])}
    for rule in sorted(EXPECTED_RULES - seen_rules):
        failures.append("rule %r has no firing fixture" % rule)

    # 4: the conforming twins lint clean. os.walk so subtrees like
    # layers/ contribute their clean halves too.
    ok_files = []
    for dirpath, dirnames, filenames in os.walk(HERE):
        dirnames.sort()
        for fn in sorted(filenames):
            if fn.endswith(("_ok.cc", "_ok.hh")):  # incl. suppress_ok
                full = os.path.join(dirpath, fn)
                ok_files.append(os.path.relpath(full, ROOT))
    rc, doc = run_lint(sorted(ok_files))
    if rc != 0 or doc.get("count") != 0:
        failures.append(
            "conforming fixtures not clean (exit %d):\n  %s"
            % (rc, "\n  ".join(
                "%s:%d [%s] %s" % (f["path"], f["line"], f["rule"],
                                   f["message"])
                for f in doc.get("findings", []))))

    if failures:
        print("minnow-lint fixture suite FAILED:")
        for f in failures:
            print(" -", f)
        return 1
    print("minnow-lint fixture suite passed: %d golden findings, "
          "%d rules exercised, %d conforming twins clean"
          % (len(want), len(EXPECTED_RULES), len(ok_files)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
