// Seeded violations for the `stats-lifetime` rule: a group
// registered into an external registry with no removal path.

#ifndef FIXTURE_STATS_LIFETIME_BAD_HH
#define FIXTURE_STATS_LIFETIME_BAD_HH

namespace fixture
{

class StatsRegistry;
class StatsGroup;

class LeakyComponent
{
  public:
    // finding: `reg` is external (a parameter) and no removeGroup()
    // is reachable from any destructor of this class — the group's
    // formulas capture `this` and dangle once the component dies.
    void
    registerStats(StatsRegistry &reg)
    {
        reg.freshGroup("leaky");
    }

  private:
    unsigned long long counter_ = 0;
};

} // namespace fixture

#endif
