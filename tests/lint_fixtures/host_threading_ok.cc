// Conforming twin of host_threading_bad.cc: must produce zero
// findings. Exercises the rule's negative space — cross-thread work
// expressed through the sim/parallel primitives, project types that
// merely resemble banned names, and unqualified identifiers.

#include <cstdint>
#include <functional>

namespace fixture
{

// The sanctioned shapes: a fork-join pool job plus an SPSC drain.
// (Declarations stand in for sim/parallel includes so the fixture
// lints standalone.)
struct ShardPoolLike
{
    void runOnAll(const std::function<void(std::uint32_t)> &fn);
};

template <typename T>
struct SpscChannelLike
{
    bool push(T v);
    bool pop(T &out);
};

void
fanOutSamples(ShardPoolLike &pool, SpscChannelLike<int> &ch)
{
    pool.runOnAll([&](std::uint32_t lane) { ch.push(int(lane)); });
    int v;
    while (ch.pop(v)) {
    }
}

// Project types named like banned primitives, without std::
// qualification, must not trip the ban list.
struct barrier
{
    int phase = 0;
};

struct future
{
    int value = 0;
};

barrier epochBoundary;
future pendingResult;

// An identifier that merely starts with "atomic" but is not
// std::-qualified is fine too.
int atomicityBudget = 3;

} // namespace fixture
