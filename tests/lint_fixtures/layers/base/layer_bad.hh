// Seeded violation for the `layer-dag` rule: a base-layer header
// reaching UP into the app layer. The include line below must be a
// finding — the foundation now breaks whenever its client refactors.

#ifndef FIXTURE_LAYERS_BASE_LAYER_BAD_HH
#define FIXTURE_LAYERS_BASE_LAYER_BAD_HH

#include "layers/apps/layer_app.hh"

namespace fixture
{

struct BackwardsCoupling
{
    LayerApp *app = nullptr;
};

} // namespace fixture

#endif
