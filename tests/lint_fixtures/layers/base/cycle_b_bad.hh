// The other half of the seeded include cycle; see cycle_a_bad.hh.

#ifndef FIXTURE_LAYERS_BASE_CYCLE_B_BAD_HH
#define FIXTURE_LAYERS_BASE_CYCLE_B_BAD_HH

#include "layers/base/cycle_a_bad.hh"

namespace fixture
{

struct CycleB
{
    int b = 0;
};

} // namespace fixture

#endif
