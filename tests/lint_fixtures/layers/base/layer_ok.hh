// Conforming fixture for the `layer-dag` rule: a base-layer header
// with no upward dependencies. Must lint clean.

#ifndef FIXTURE_LAYERS_BASE_LAYER_OK_HH
#define FIXTURE_LAYERS_BASE_LAYER_OK_HH

namespace fixture
{

struct BaseTick
{
    unsigned long long value = 0;
};

} // namespace fixture

#endif
