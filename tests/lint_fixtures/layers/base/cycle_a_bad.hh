// Seeded violation for the `layer-dag` rule: half of a file-level
// include cycle (cycle_a_bad.hh <-> cycle_b_bad.hh). The cycle is
// reported once, anchored on this file (lexicographically first).

#ifndef FIXTURE_LAYERS_BASE_CYCLE_A_BAD_HH
#define FIXTURE_LAYERS_BASE_CYCLE_A_BAD_HH

#include "layers/base/cycle_b_bad.hh"

namespace fixture
{

struct CycleA
{
    int a = 0;
};

} // namespace fixture

#endif
