// Support file for the `layer-dag` fixtures: an app-layer header.
// Its include of the base layer is a forward (downward) edge and is
// fine; layer_bad.hh's include of THIS file is the seeded backward
// edge.

#ifndef FIXTURE_LAYERS_APPS_LAYER_APP_HH
#define FIXTURE_LAYERS_APPS_LAYER_APP_HH

#include "layers/base/layer_ok.hh"

namespace fixture
{

struct LayerApp
{
    BaseTick started;
};

} // namespace fixture

#endif
