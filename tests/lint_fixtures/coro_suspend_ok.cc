// Conforming twin for the `coro-suspend-safety` rule: the same
// shapes as coro_suspend_bad.cc, written safely. Must lint clean.

#include <memory>
#include <vector>

namespace fixture
{

template <typename T>
struct CoTask
{
};

struct Awaitable
{
};

struct SimContext
{
    Awaitable sync();
    unsigned id() const;
};

struct SafeSlot
{
    int pending = 0;
    void touch();
};

struct Tracker
{
    void mark();
};

struct WorkUnit
{
    int prio = 0;
};

class SuspendSafe
{
  public:
    CoTask<void> refetchAfterAwait(SimContext &ctx);
    CoTask<void> pointerPeek(SimContext &ctx);
    CoTask<void> valueLambda(SimContext &ctx);
    CoTask<bool> fetchInto(SimContext &ctx, WorkUnit &out);
    CoTask<void> awaitedCaller(SimContext &ctx);

  private:
    std::vector<SafeSlot> safeSlots_;
    std::unique_ptr<Tracker> tracker_;
};

CoTask<void>
SuspendSafe::refetchAfterAwait(SimContext &ctx)
{
    safeSlots_[ctx.id()].pending += 1;
    co_await ctx.sync();
    // Safe: the element is re-fetched after the suspension instead
    // of holding a reference across it.
    safeSlots_[ctx.id()].touch();
}

CoTask<void>
SuspendSafe::pointerPeek(SimContext &ctx)
{
    // Safe: a .get() peek copies the pointer; the unique_ptr owner
    // is a member whose identity is stable across suspension.
    Tracker *t = tracker_.get();
    co_await ctx.sync();
    if (t)
        t->mark();
}

CoTask<void>
SuspendSafe::valueLambda(SimContext &ctx)
{
    int credits = 2;
    // Safe: by-value capture owns its state; nothing dangles when
    // the frame suspends.
    auto replay = [credits]() mutable { credits += 1; };
    co_await ctx.sync();
    replay();
}

CoTask<bool>
SuspendSafe::fetchInto(SimContext &ctx, WorkUnit &out)
{
    co_await ctx.sync();
    // Safe whole-program: every call site of fetchInto() below
    // co_awaits it, so the caller's frame outlives this write.
    out.prio = 1;
    co_return true;
}

CoTask<void>
SuspendSafe::awaitedCaller(SimContext &ctx)
{
    WorkUnit item;
    bool got = co_await fetchInto(ctx, item);
    if (got)
        item.prio += 1;
    co_return;
}

} // namespace fixture
