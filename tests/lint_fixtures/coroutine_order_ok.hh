// Conforming twin of coroutine_order_bad.hh: zero findings.

#ifndef FIXTURE_COROUTINE_ORDER_OK_HH
#define FIXTURE_COROUTINE_ORDER_OK_HH

#include <coroutine>
#include <vector>

namespace fixture
{

template <typename T>
struct CoTask
{
};

struct HistogramStat
{
};

namespace timeline
{
using TrackId = unsigned;
}

class Engine
{
  public:
    void run();

  private:
    // Bookkeeping first: it must outlive the suspended coroutines,
    // whose RAII locals touch it on destruction.
    timeline::TrackId laneTrack_ = 0;
    HistogramStat *latencyHist_ = nullptr;

    std::vector<CoTask<void>> threadlets_;

    // Non-owning handle containers after the CoTask container are
    // fine: destroying a handle destroys no coroutine.
    std::vector<std::coroutine_handle<>> waiters_;
};

} // namespace fixture

#endif
