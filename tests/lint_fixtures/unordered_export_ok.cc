// Conforming twin of unordered_export_bad.cc: zero findings.

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture
{

struct StatsExporter
{
    std::unordered_map<std::string, double> values;

    // The canonical conforming shape: collect keys, sort them, emit
    // in sorted order. The sort call marks the function as having a
    // fixed emission order.
    std::string
    toJson() const
    {
        std::vector<std::string> keys;
        for (const auto &kv : values)
            keys.push_back(kv.first);
        std::sort(keys.begin(), keys.end());
        std::string out = "{";
        for (const auto &k : keys)
            out += k;
        out += "}";
        return out;
    }

    // Iterating an unordered container outside an export path is
    // fine: order does not reach any diffed artifact.
    double
    total() const
    {
        double sum = 0;
        for (const auto &kv : values)
            sum += kv.second;
        return sum;
    }
};

} // namespace fixture
