// Conforming twin for the `determinism-taint` rule: host time used
// only where it is sanctioned (host-side profiling counters that
// are neither stats scalars nor checkpointed), and sim-facing sinks
// fed exclusively from sim time and configuration. Must lint clean.

namespace fixture
{

unsigned long long hostNowNs();

struct ProfTimerQueue
{
    unsigned long long now() const;
    void schedule(unsigned long long when, void (*fn)(void *),
                  void *arg);
};

struct ConfigRng
{
    void seed(unsigned long long s);
};

struct RunConfig
{
    unsigned long long rngSeed = 1;
};

class HostProfiler
{
  public:
    void armTimer(ProfTimerQueue &tq);
    void reseed(ConfigRng &rng, const RunConfig &cfg);
    void beginSection();
    void endSection();

  private:
    // Plain host-side accounting: not a Stat, not checkpointed —
    // exactly the sanctioned hostprof shape.
    unsigned long long sectionStartNs_ = 0;
    unsigned long long hostSpentNs_ = 0;
};

void
HostProfiler::armTimer(ProfTimerQueue &tq)
{
    // Safe: the event time is pure sim time.
    tq.schedule(tq.now() + 1000, nullptr, nullptr);
}

void
HostProfiler::reseed(ConfigRng &rng, const RunConfig &cfg)
{
    // Safe: the seed comes from configuration, so every run with
    // the same config draws the same stream.
    rng.seed(cfg.rngSeed);
}

void
HostProfiler::beginSection()
{
    sectionStartNs_ = hostNowNs();
}

void
HostProfiler::endSection()
{
    hostSpentNs_ += hostNowNs() - sectionStartNs_;
}

} // namespace fixture
