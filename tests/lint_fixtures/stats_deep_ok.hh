// Conforming fixture for the whole-program `stats-lifetime` rule:
// the removeGroup() that balances an external registration sits two
// helper calls below the destructor. The pre-ProjectModel rule
// stopped after one level and flagged this shape as a leak (false
// positive); with the project call graph it must lint clean.

#ifndef FIXTURE_STATS_DEEP_OK_HH
#define FIXTURE_STATS_DEEP_OK_HH

namespace fixture
{

class StatsRegistry;

class DeepStatsHolder
{
  public:
    void
    attachStats(StatsRegistry &reg)
    {
        reg_ = &reg;
        reg_->group("deep_holder");
    }

    ~DeepStatsHolder() { teardown(); }

  private:
    void
    teardown()
    {
        dropStats();
    }

    void
    dropStats()
    {
        if (reg_)
            reg_->removeGroup("deep_holder");
    }

    StatsRegistry *reg_ = nullptr;
};

} // namespace fixture

#endif
