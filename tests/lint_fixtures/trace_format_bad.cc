// Seeded violations for the `trace-format` rule: printf-family
// spec/argument mismatches (these compile when the forwarding
// macro layer drops [[gnu::format]], then read garbage varargs).

namespace fixture
{

void
emit(int a, int b, const char *name)
{
    // finding: 2 conversions, 1 argument.
    DPRINTF(Engine, "engine", "a=%d b=%d\n", a);

    // finding: 1 conversion, 2 arguments.
    warn("stray value %d\n", a, b);

    // finding: 2 conversions, 1 argument (fmt arg is index 1).
    panic_if(a > b, "bad pair %d/%s", name);
}

} // namespace fixture
