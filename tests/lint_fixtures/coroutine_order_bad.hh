// Seeded violations for the `coroutine-order` rule: bookkeeping
// members declared after an owning coroutine container.

#ifndef FIXTURE_COROUTINE_ORDER_BAD_HH
#define FIXTURE_COROUTINE_ORDER_BAD_HH

#include <vector>

namespace fixture
{

template <typename T>
struct CoTask
{
};

struct HistogramStat
{
};

namespace timeline
{
using TrackId = unsigned;
}

class Engine
{
  public:
    void run();

  private:
    std::vector<CoTask<void>> threadlets_;
    timeline::TrackId laneTrack_ = 0;    // finding: after container
    HistogramStat *latencyHist_ = nullptr; // finding: after container
};

} // namespace fixture

#endif
