// Conforming twin of daemon_accounting_bad.cc: zero findings. The
// sampler follows the full daemon protocol (mirrors
// base/stats.cc); the one-shot event below never re-arms, so the
// protocol does not apply to it.

namespace fixture
{

class EventQueue
{
  public:
    unsigned long long now() const;
    bool quiescent() const;
    void daemonScheduled();
    void daemonFired();
    void schedule(unsigned long long when, void (*fn)(void *),
                  void *arg);
};

class GoodSampler
{
  public:
    void start();

  private:
    static void sampleEvent(void *arg);

    EventQueue *eq_ = nullptr;
    unsigned long long interval_ = 1000;
};

void
GoodSampler::start()
{
    eq_->daemonScheduled();
    eq_->schedule(eq_->now() + interval_, &GoodSampler::sampleEvent,
                  this);
}

void
GoodSampler::sampleEvent(void *arg)
{
    auto *s = static_cast<GoodSampler *>(arg);
    s->eq_->daemonFired();
    if (!s->eq_->quiescent()) {
        s->eq_->daemonScheduled();
        s->eq_->schedule(s->eq_->now() + s->interval_,
                         &GoodSampler::sampleEvent, s);
    }
}

class OneShot
{
  public:
    void arm();

  private:
    static void fireEvent(void *arg);

    EventQueue *eq_ = nullptr;
};

void
OneShot::arm()
{
    // Never re-arms: a plain event, no daemon accounting needed.
    eq_->schedule(eq_->now() + 5, &OneShot::fireEvent, this);
}

void
OneShot::fireEvent(void *arg)
{
    (void)arg;
}

} // namespace fixture
