// Seeded violations for the `determinism-taint` rule: host-derived
// values laundered through return values (up to three call layers)
// and then written into the places that steer simulated behavior.
// Conforming twin in determinism_taint_ok.cc.

namespace fixture
{

namespace ckpt
{
class Ckpt;
}

struct ScalarStat
{
};

unsigned long long hostNowNs();

// Depth-1 laundering: the banned value hides behind a return.
unsigned long long
wallTicks()
{
    return hostNowNs() / 64;
}

// Depth-2 laundering: still inside the taint closure.
unsigned long long
wallJitter()
{
    return wallTicks() & 0xff;
}

struct TimerQueue
{
    unsigned long long now() const;
    void schedule(unsigned long long when, void (*fn)(void *),
                  void *arg);
};

struct SeededRng
{
    void seed(unsigned long long s);
};

class TaintSinks
{
  public:
    void armTimer(TimerQueue &tq);
    void reseed(SeededRng &rng);
    void sample();
    void stampRestore();

    void
    checkpoint(ckpt::Ckpt &ck)
    {
        ck.io(bootStamp_);
        ck.transient("hostLag_");
    }

  private:
    ScalarStat hostLag_;
    unsigned long long bootStamp_ = 0;
};

void
TaintSinks::armTimer(TimerQueue &tq)
{
    // finding: a host-dependent event time reorders the whole run
    // (wallJitter is tainted two call layers from hostNowNs).
    tq.schedule(tq.now() + wallJitter(), nullptr, nullptr);
}

void
TaintSinks::reseed(SeededRng &rng)
{
    unsigned long long s = wallTicks();
    // finding: host-derived seed re-keys every downstream draw.
    rng.seed(s);
}

void
TaintSinks::sample()
{
    // finding: stats JSON is byte-diffed across runs; host time
    // must not reach an exported scalar.
    hostLag_ = wallTicks();
}

void
TaintSinks::stampRestore()
{
    // finding: checkpoint-serialized state must not depend on the
    // host clock, or restores diverge run to run.
    bootStamp_ = wallTicks();
}

} // namespace fixture
