// Seeded violations for the `unordered-export` rule: hash-table
// iteration order leaking into diffed artifacts.

#include <string>
#include <unordered_map>

namespace fixture
{

struct StatsExporter
{
    std::unordered_map<std::string, double> values;

    std::string
    toJson() const
    {
        std::string out = "{";
        for (const auto &kv : values) // finding: range-for
            out += kv.first;
        out += "}";
        return out;
    }

    std::string
    dumpDiagnostic() const
    {
        std::string out;
        std::unordered_map<int, int> histo;
        // finding: iterator walk over a local unordered container
        for (auto it = histo.begin(); it != histo.end(); ++it)
            out += std::to_string(it->second);
        return out;
    }
};

} // namespace fixture
