// Seeded violation for the whole-program `daemon-accounting` rule:
// the re-arm of a daemon handler sits two helper calls below the
// handler. The pre-ProjectModel rule followed exactly one level and
// missed this shape entirely — this fixture pins the fix. Exactly
// one finding: the deep re-arm is not quiescent()-guarded. The rest
// of the protocol (daemonScheduled at every arm site, daemonFired
// in the handler) is deliberately correct so nothing else fires.

namespace fixture
{

class DeepEventQueue
{
  public:
    unsigned long long now() const;
    bool quiescent() const;
    void daemonScheduled();
    void daemonFired();
    void schedule(unsigned long long when, void (*fn)(void *),
                  void *arg);
};

class DeepSampler
{
  public:
    void start();

  private:
    static void tickEvent(void *arg);
    void stepOne();
    void stepTwo();

    DeepEventQueue *eq_ = nullptr;
    unsigned long long interval_ = 500;
};

void
DeepSampler::start()
{
    eq_->daemonScheduled();
    eq_->schedule(eq_->now() + interval_, &DeepSampler::tickEvent,
                  this);
}

void
DeepSampler::tickEvent(void *arg)
{
    auto *s = static_cast<DeepSampler *>(arg);
    s->eq_->daemonFired();
    s->stepOne();
}

void
DeepSampler::stepOne()
{
    stepTwo();
}

// finding on the definition below: the re-arm two levels under the
// handler is not guarded by quiescent(), so the queue never drains.
void
DeepSampler::stepTwo()
{
    eq_->daemonScheduled();
    eq_->schedule(eq_->now() + interval_, &DeepSampler::tickEvent,
                  this);
}

} // namespace fixture
