// Conforming twin of determinism_bad.cc: must produce zero
// findings. Exercises the rule's negative space — seeded RNG,
// stable-id keys, and identifiers that merely resemble banned ones.

#include <cstdint>
#include <map>

namespace fixture
{

struct Rng
{
    std::uint64_t state;
    std::uint64_t next();
};

int
rollDice(Rng &rng)
{
    // Seeded stream, not rand(): reproducible per seed.
    return int(rng.next() % 6);
}

struct ObjectTable
{
    // Keyed on a stable id, not a pointer: iteration order is the
    // id order, identical across runs.
    std::map<std::uint64_t, int> byId;
};

// Near-miss identifiers must not trip the ban list.
int randomize_nothing = 0;

template <typename T>
struct set; // a project type named `set` without std:: is fine

void
useProjectSet(set<int *> *)
{
}

} // namespace fixture
