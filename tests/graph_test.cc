/**
 * @file
 * Unit tests for the graph substrate: builder transforms, CSR
 * invariants, generators (shape properties per Table 1 classes),
 * statistics, and file I/O round-trips.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>

#include "base/sim_alloc.hh"
#include "graph/builder.hh"
#include "graph/csr.hh"
#include "graph/generators.hh"
#include "graph/gstats.hh"
#include "graph/io.hh"

namespace minnow::graph
{
namespace
{

TEST(Builder, BasicCsr)
{
    GraphBuilder b(4);
    b.addEdge(0, 1, 5);
    b.addEdge(0, 2, 7);
    b.addEdge(2, 3, 1);
    CsrGraph g = b.build(true);
    EXPECT_EQ(g.numNodes(), 4u);
    EXPECT_EQ(g.numEdges(), 3u);
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.degree(1), 0u);
    EXPECT_EQ(g.edgeDst(g.edgeBegin(0)), 1u);
    EXPECT_EQ(g.edgeWeight(g.edgeBegin(0)), 5u);
    EXPECT_TRUE(g.hasEdge(0, 2));
    EXPECT_FALSE(g.hasEdge(1, 0));
}

TEST(Builder, SymmetrizeDedupSelfLoops)
{
    GraphBuilder b(3);
    b.addEdge(0, 1);
    b.addEdge(1, 0);
    b.addEdge(1, 1);
    b.addEdge(0, 2);
    CsrGraph g =
        b.removeSelfLoops().symmetrize().dedup().build(false);
    EXPECT_EQ(g.numEdges(), 4u); // 0-1, 1-0, 0-2, 2-0.
    EXPECT_TRUE(g.hasEdge(2, 0));
    EXPECT_FALSE(g.hasEdge(1, 1));
}

TEST(Builder, AdjacencySorted)
{
    GraphBuilder b(5);
    b.addEdge(0, 4);
    b.addEdge(0, 1);
    b.addEdge(0, 3);
    CsrGraph g = b.build(false);
    auto nbrs = g.neighbors(0);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(Csr, SimulatedLayout)
{
    GraphBuilder b(10);
    b.addEdge(0, 1);
    b.addEdge(1, 2);
    CsrGraph g = b.build(false);
    SimAlloc alloc;
    g.assignAddresses(alloc, 32);
    EXPECT_TRUE(g.hasAddresses());
    EXPECT_EQ(g.nodeAddr(1) - g.nodeAddr(0), 32u);
    EXPECT_EQ(g.edgeAddr(1) - g.edgeAddr(0), 16u);
    EXPECT_EQ(g.simBytes(), 10 * 32 + 2 * 16u);
    // Two 32 B nodes share a 64 B line.
    EXPECT_EQ(lineAddr(g.nodeAddr(0)), lineAddr(g.nodeAddr(1)));
}

TEST(Csr, TcLayoutIs64Bytes)
{
    GraphBuilder b(4);
    b.addEdge(0, 1);
    CsrGraph g = b.build(false);
    SimAlloc alloc;
    g.assignAddresses(alloc, 64);
    EXPECT_EQ(g.nodeAddr(1) - g.nodeAddr(0), 64u);
}

TEST(Csr, EdgeOracle)
{
    GraphBuilder b(4);
    b.addEdge(0, 3);
    b.addEdge(0, 1);
    CsrGraph g = b.build(false);
    SimAlloc alloc;
    g.assignAddresses(alloc);
    auto oracle = g.makeEdgeOracle();
    std::uint64_t v = 0;
    ASSERT_TRUE(oracle(g.edgeAddr(0), v));
    EXPECT_EQ(v, 1u); // sorted adjacency: (0,1) first.
    ASSERT_TRUE(oracle(g.edgeAddr(1), v));
    EXPECT_EQ(v, 3u);
    EXPECT_FALSE(oracle(g.nodeAddr(0), v));
}

TEST(Generators, GridShape)
{
    CsrGraph g = gridGraph(10, 7, 100, 42);
    EXPECT_EQ(g.numNodes(), 70u);
    // Interior nodes have degree 4, corners 2.
    GraphStats s = analyzeGraph(g);
    EXPECT_EQ(s.maxDegree, 4u);
    EXPECT_EQ(s.estDiameter, 15u); // (10-1) + (7-1).
    EXPECT_EQ(s.reachableFrom0, 70u);
}

TEST(Generators, GridDeterministic)
{
    CsrGraph a = gridGraph(8, 8, 50, 7);
    CsrGraph b = gridGraph(8, 8, 50, 7);
    ASSERT_EQ(a.numEdges(), b.numEdges());
    for (EdgeId e = 0; e < a.numEdges(); ++e) {
        EXPECT_EQ(a.edgeDst(e), b.edgeDst(e));
        EXPECT_EQ(a.edgeWeight(e), b.edgeWeight(e));
    }
}

TEST(Generators, RandomGraphShape)
{
    CsrGraph g = randomGraph(2000, 4.0, 11);
    GraphStats s = analyzeGraph(g);
    EXPECT_NEAR(s.avgDegree, 4.0, 0.5);
    // Random graph: low max degree, logarithmic diameter.
    EXPECT_LT(s.maxDegree, 20u);
    EXPECT_LT(s.estDiameter, 40u);
    EXPECT_GT(s.reachableFrom0, NodeId(1600)); // giant component.
}

TEST(Generators, RmatIsSkewed)
{
    CsrGraph g = rmatGraph(12, 8, 5);
    GraphStats s = analyzeGraph(g);
    // Scale-free: the hub dwarfs the average degree.
    EXPECT_GT(s.maxDegree, 50 * std::uint32_t(s.avgDegree + 1));
    EXPECT_LT(s.estDiameter, 12u);
}

TEST(Generators, PowerLawSkew)
{
    CsrGraph g = powerLawGraph(4000, 8.0, 1.0, 3);
    GraphStats s = analyzeGraph(g);
    EXPECT_GT(s.maxDegree, 10 * std::uint32_t(s.avgDegree + 1));
}

TEST(Generators, WattsStrogatzHasTriangles)
{
    CsrGraph g = wattsStrogatz(1000, 8, 0.05, 9);
    // Count triangles around a few nodes; ring lattices are dense in
    // them.
    std::uint64_t tri = 0;
    for (NodeId v = 0; v < 50; ++v) {
        auto nbrs = g.neighbors(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
                if (g.hasEdge(nbrs[i], nbrs[j]))
                    ++tri;
            }
        }
    }
    EXPECT_GT(tri, 100u);
}

TEST(Generators, BipartiteIsBipartite)
{
    CsrGraph g = bipartiteGraph(500, 300, 5.0, 0.8, 21);
    EXPECT_EQ(g.numNodes(), 800u);
    // No edge inside either part.
    for (NodeId v = 0; v < 500; ++v) {
        for (NodeId u : g.neighbors(v))
            EXPECT_GE(u, 500u);
    }
    for (NodeId v = 500; v < 800; ++v) {
        for (NodeId u : g.neighbors(v))
            EXPECT_LT(u, 500u);
    }
}

TEST(Stats, EmptyAndSingle)
{
    GraphBuilder b(1);
    CsrGraph g = b.build(false);
    GraphStats s = analyzeGraph(g);
    EXPECT_EQ(s.nodes, 1u);
    EXPECT_EQ(s.edges, 0u);
    EXPECT_EQ(s.maxDegree, 0u);
    EXPECT_EQ(s.estDiameter, 0u);
}

TEST(Io, DimacsRoundTrip)
{
    CsrGraph g = gridGraph(5, 5, 20, 3);
    std::string path = testing::TempDir() + "/mg_test.gr";
    writeDimacs(g, path);
    CsrGraph h = readDimacs(path);
    ASSERT_EQ(h.numNodes(), g.numNodes());
    ASSERT_EQ(h.numEdges(), g.numEdges());
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        EXPECT_EQ(h.edgeDst(e), g.edgeDst(e));
        EXPECT_EQ(h.edgeWeight(e), g.edgeWeight(e));
    }
    std::remove(path.c_str());
}

TEST(Io, BinaryRoundTrip)
{
    CsrGraph g = randomGraph(300, 4.0, 17);
    std::string path = testing::TempDir() + "/mg_test.bin";
    writeBinary(g, path);
    CsrGraph h = readBinary(path);
    ASSERT_EQ(h.numNodes(), g.numNodes());
    ASSERT_EQ(h.numEdges(), g.numEdges());
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        EXPECT_EQ(h.edgeDst(e), g.edgeDst(e));
        EXPECT_EQ(h.edgeWeight(e), g.edgeWeight(e));
    }
    std::remove(path.c_str());
}

TEST(Io, EdgeListParsing)
{
    std::string path = testing::TempDir() + "/mg_test.txt";
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "# comment line\n10 20\n20 30 7\n10 30\n");
    std::fclose(f);
    CsrGraph g = readEdgeList(path);
    EXPECT_EQ(g.numNodes(), 3u); // ids compacted.
    EXPECT_EQ(g.numEdges(), 3u);
    std::remove(path.c_str());
}

TEST(Io, EdgeListSymmetrize)
{
    std::string path = testing::TempDir() + "/mg_test2.txt";
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "0 1\n1 2\n");
    std::fclose(f);
    CsrGraph g = readEdgeList(path, true);
    EXPECT_EQ(g.numEdges(), 4u);
    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace minnow::graph
