/**
 * @file
 * Tests for the BSP (GraphMat-like) engine and the experiment
 * harness: correctness of BSP execution for each workload class,
 * bucketed (GMat*) mode, and harness configuration coverage.
 */

#include <gtest/gtest.h>

#include "apps/cc.hh"
#include "apps/pr.hh"
#include "apps/sssp.hh"
#include "bsp/bsp_engine.hh"
#include "graph/generators.hh"
#include "graph/gstats.hh"
#include "harness/workloads.hh"
#include "worklist/obim.hh"
#include "runtime/machine.hh"

namespace minnow
{
namespace
{

using bsp::BspConfig;
using bsp::BspStats;
using bsp::runBsp;
using harness::Config;
using harness::makeWorkload;
using harness::RunSpec;
using harness::runExperiment;
using harness::Workload;

MachineConfig
cfg(std::uint32_t cores)
{
    MachineConfig c = scaledMachine();
    c.numCores = cores;
    return c;
}

TEST(Bsp, BfsConvergesAndVerifies)
{
    runtime::Machine m(cfg(4));
    graph::CsrGraph g = graph::randomGraph(2000, 4.0, 7);
    g.assignAddresses(m.alloc);
    apps::SsspApp app(&g, 0, true, 1u << 30, "bfs");
    BspConfig bc;
    bc.threads = 4;
    BspStats st;
    auto r = runBsp(m, app, bc, &st);
    EXPECT_FALSE(r.timedOut);
    EXPECT_TRUE(r.verified);
    // BFS supersteps track hop levels: close to the BFS depth.
    graph::GraphStats gs = graph::analyzeGraph(g);
    EXPECT_GE(st.supersteps, gs.estDiameter / 2);
    EXPECT_GT(st.vertexOps, 0u);
}

TEST(Bsp, SsspUnorderedDoesMoreWorkThanObim)
{
    // The Section 3.1 story at unit-test scale: unordered BSP
    // re-relaxes far more than priority-ordered execution. Wide
    // weight spread + high diameter amplify ordering sensitivity.
    graph::CsrGraph g = graph::gridGraph(60, 60, 1000, 2);

    runtime::Machine m1(cfg(4));
    g.assignAddresses(m1.alloc);
    apps::SsspApp app1(&g, 0, false, 1u << 30, "sssp");
    BspConfig bc;
    bc.threads = 4;
    auto bspRun = runBsp(m1, app1, bc);
    ASSERT_TRUE(bspRun.verified);

    Workload w = makeWorkload("sssp", 0.03, 2);
    RunSpec spec;
    spec.config = Config::Obim;
    spec.threads = 4;
    spec.machine = cfg(4);
    auto obimRun = runExperiment(w, spec);
    ASSERT_TRUE(obimRun.run.verified);

    // Same-order comparison isn't meaningful across different graphs,
    // so compare relaxation counts per edge on the shared graph.
    runtime::Machine m2(cfg(4));
    g.assignAddresses(m2.alloc);
    apps::SsspApp app2(&g, 0, false, 1u << 30, "sssp");
    worklist::ObimWorklist wl(&m2, 6, 16, 2);
    galois::RunConfig rc;
    rc.threads = 4;
    auto obim2 = galois::runParallel(m2, app2, wl, rc);
    ASSERT_TRUE(obim2.verified);
    EXPECT_GT(bspRun.workload.edgesVisited,
              obim2.workload.edgesVisited);
}

TEST(Bsp, BucketedModeImprovesSsspWork)
{
    graph::CsrGraph g = graph::gridGraph(24, 24, 100, 2);
    auto run = [&](bool bucketed) {
        runtime::Machine m(cfg(4));
        g.assignAddresses(m.alloc);
        apps::SsspApp app(&g, 0, false, 1u << 30, "sssp");
        BspConfig bc;
        bc.threads = 4;
        bc.bucketed = bucketed;
        bc.lgBucketInterval = 6; // coarse: per-kernel overhead.
        BspStats st;
        auto r = runBsp(m, app, bc, &st);
        EXPECT_TRUE(r.verified);
        return r.workload.edgesVisited;
    };
    // GMat*: coarse priority order reduces wasted relaxations.
    EXPECT_LT(run(true), run(false));
}

TEST(Bsp, PrConverges)
{
    runtime::Machine m(cfg(4));
    graph::CsrGraph g = graph::powerLawGraph(500, 8.0, 0.9, 13);
    g.assignAddresses(m.alloc);
    apps::PrApp app(&g, 0.85, 1e-4, 1u << 30);
    BspConfig bc;
    bc.threads = 4;
    auto r = runBsp(m, app, bc);
    EXPECT_FALSE(r.timedOut);
    EXPECT_TRUE(r.verified);
}

TEST(Harness, AllWorkloadsConstructAtTinyScale)
{
    for (const std::string &name : harness::workloadNames()) {
        Workload w = makeWorkload(name, 0.02, 3);
        EXPECT_EQ(w.name, name);
        EXPECT_GT(w.graph.numNodes(), 0u) << name;
        EXPECT_GT(w.graph.numEdges(), 0u) << name;
        EXPECT_NE(w.app, nullptr) << name;
        EXPECT_FALSE(w.inputDesc.empty()) << name;
    }
}

TEST(Harness, ConfigNamesRoundTrip)
{
    for (Config c : {Config::SerialRelaxed, Config::Obim,
                     Config::ObimStride, Config::ObimImp,
                     Config::Fifo, Config::Lifo, Config::Strict,
                     Config::Minnow, Config::MinnowPf, Config::Bsp,
                     Config::BspBucketed}) {
        EXPECT_EQ(harness::parseConfig(harness::configName(c)), c);
    }
}

TEST(Harness, RunsEveryConfigOnBfs)
{
    for (Config c : {Config::SerialRelaxed, Config::Obim,
                     Config::ObimStride, Config::ObimImp,
                     Config::Fifo, Config::Minnow, Config::MinnowPf,
                     Config::Bsp}) {
        Workload w = makeWorkload("bfs", 0.05, 7);
        RunSpec spec;
        spec.config = c;
        spec.threads = c == Config::SerialRelaxed ? 1 : 4;
        spec.machine = cfg(4);
        auto r = runExperiment(w, spec);
        EXPECT_FALSE(r.run.timedOut) << harness::configName(c);
        EXPECT_TRUE(r.run.verified) << harness::configName(c);
        EXPECT_GT(r.run.cycles, 0u) << harness::configName(c);
    }
}

TEST(Harness, MinnowPfBeatsObimOnBfs)
{
    Workload w = makeWorkload("bfs", 0.3, 7);
    RunSpec sw;
    sw.config = Config::Obim;
    sw.threads = 8;
    sw.machine = cfg(8);
    auto base = runExperiment(w, sw);
    RunSpec hw;
    hw.config = Config::MinnowPf;
    hw.threads = 8;
    hw.machine = cfg(8);
    auto mn = runExperiment(w, hw);
    ASSERT_TRUE(base.run.verified);
    ASSERT_TRUE(mn.run.verified);
    EXPECT_LT(mn.run.cycles, base.run.cycles);
    EXPECT_LT(mn.run.l2Mpki, base.run.l2Mpki / 2);
}

TEST(Harness, TcUses64ByteNodes)
{
    Workload w = makeWorkload("tc", 0.02, 3);
    EXPECT_EQ(w.nodeBytes, 64u);
    EXPECT_FALSE(w.usesPriority);
}

} // anonymous namespace
} // namespace minnow
