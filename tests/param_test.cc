/**
 * @file
 * Parameterized property sweeps (TEST_P):
 *  - every workload verifies under every scheduler configuration;
 *  - runs are deterministic per configuration;
 *  - graph generators hold their structural invariants across seeds;
 *  - timing sanity holds across worklists (serial <= parallel work,
 *    conservation of tasks);
 *  - timeout handling is graceful for every configuration.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "graph/builder.hh"
#include "graph/generators.hh"
#include "graph/gstats.hh"
#include "harness/workloads.hh"
#include "runtime/machine.hh"

namespace minnow
{
namespace
{

using harness::Config;
using harness::makeWorkload;
using harness::RunSpec;
using harness::runExperiment;
using harness::Workload;

//
// Workload x configuration correctness sweep.
//

using WorkloadConfig = std::tuple<std::string, std::string>;

class WorkloadConfigTest
    : public testing::TestWithParam<WorkloadConfig>
{
};

TEST_P(WorkloadConfigTest, VerifiesAtTinyScale)
{
    auto [workload, config] = GetParam();
    Workload w = makeWorkload(workload, 0.03, 5);
    RunSpec spec;
    spec.config = harness::parseConfig(config);
    spec.threads = spec.config == Config::SerialRelaxed ? 1 : 4;
    spec.machine.numCores = 4;
    auto r = runExperiment(w, spec);
    EXPECT_FALSE(r.run.timedOut);
    EXPECT_TRUE(r.run.verified);
    EXPECT_GT(r.run.cycles, 0u);
    EXPECT_GT(r.run.instructions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadConfigTest,
    testing::Combine(
        testing::Values("sssp", "bfs", "g500", "cc", "pr", "tc",
                        "bc"),
        testing::Values("serial", "obim", "fifo", "minnow",
                        "minnow-pf", "bsp")),
    [](const testing::TestParamInfo<WorkloadConfig> &info) {
        std::string name = std::get<0>(info.param) + "_" +
                           std::get<1>(info.param);
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

//
// Determinism sweep: identical flags -> identical cycle counts.
//

class DeterminismTest : public testing::TestWithParam<std::string>
{
};

TEST_P(DeterminismTest, SameConfigSameCycles)
{
    auto once = [&] {
        Workload w = makeWorkload("bfs", 0.05, 9);
        RunSpec spec;
        spec.config = harness::parseConfig(GetParam());
        spec.threads = 4;
        spec.machine.numCores = 4;
        return runExperiment(w, spec).run.cycles;
    };
    EXPECT_EQ(once(), once());
}

INSTANTIATE_TEST_SUITE_P(
    Schedulers, DeterminismTest,
    testing::Values("obim", "fifo", "minnow", "minnow-pf", "bsp"),
    [](const auto &info) {
        std::string n = info.param;
        for (char &c : n) {
            if (c == '-')
                c = '_';
        }
        return n;
    });

//
// Generator invariants across seeds.
//

class GeneratorSeedTest
    : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(GeneratorSeedTest, GridInvariants)
{
    graph::CsrGraph g = graph::gridGraph(20, 15, 50, GetParam());
    EXPECT_EQ(g.numNodes(), 300u);
    // Symmetric: every edge has its reverse.
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        for (EdgeId e = g.edgeBegin(v); e < g.edgeEnd(v); ++e)
            EXPECT_TRUE(g.hasEdge(g.edgeDst(e), v));
    }
    graph::GraphStats s = graph::analyzeGraph(g);
    EXPECT_EQ(s.estDiameter, 33u);
    EXPECT_EQ(s.reachableFrom0, 300u);
}

TEST_P(GeneratorSeedTest, RandomGraphInvariants)
{
    graph::CsrGraph g = graph::randomGraph(1000, 4.0, GetParam());
    // Symmetric, no self loops, sorted adjacency, no duplicates.
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        auto nbrs = g.neighbors(v);
        EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
        EXPECT_TRUE(std::adjacent_find(nbrs.begin(), nbrs.end()) ==
                    nbrs.end());
        for (NodeId u : nbrs) {
            EXPECT_NE(u, v);
            EXPECT_TRUE(g.hasEdge(u, v));
        }
    }
}

TEST_P(GeneratorSeedTest, RmatSymmetricNoSelfLoops)
{
    graph::CsrGraph g = graph::rmatGraph(9, 8, GetParam());
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        for (NodeId u : g.neighbors(v)) {
            EXPECT_NE(u, v);
            EXPECT_TRUE(g.hasEdge(u, v));
        }
    }
}

TEST_P(GeneratorSeedTest, BipartitePartsRespected)
{
    graph::CsrGraph g =
        graph::bipartiteGraph(200, 100, 3.0, 0.8, GetParam());
    for (NodeId v = 0; v < 200; ++v) {
        for (NodeId u : g.neighbors(v))
            EXPECT_GE(u, 200u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedTest,
                         testing::Values(1, 7, 42, 1234, 99999));

//
// Work conservation: tasks executed >= tasks seeded, and every
// scheduler drains the monitor completely.
//

class ConservationTest : public testing::TestWithParam<std::string>
{
};

TEST_P(ConservationTest, AllTasksConsumed)
{
    Workload w = makeWorkload("cc", 0.03, 11);
    RunSpec spec;
    spec.config = harness::parseConfig(GetParam());
    spec.threads = 4;
    spec.machine.numCores = 4;
    auto r = runExperiment(w, spec);
    ASSERT_FALSE(r.run.timedOut);
    // CC seeds one task per node part; every one must execute at
    // least once (plus regenerated ones).
    EXPECT_GE(r.run.tasks, std::uint64_t(w.graph.numNodes()));
}

INSTANTIATE_TEST_SUITE_P(
    Schedulers, ConservationTest,
    testing::Values("obim", "fifo", "lifo", "minnow", "minnow-pf"),
    [](const auto &info) {
        std::string n = info.param;
        for (char &c : n) {
            if (c == '-')
                c = '_';
        }
        return n;
    });

//
// Timeout handling: a tiny event budget must end cleanly with
// timedOut set, not crash or hang, for every configuration.
//

class TimeoutTest : public testing::TestWithParam<std::string>
{
};

TEST_P(TimeoutTest, GracefulOnTinyBudget)
{
    Workload w = makeWorkload("pr", 0.1, 3);
    RunSpec spec;
    spec.config = harness::parseConfig(GetParam());
    spec.threads = 4;
    spec.machine.numCores = 4;
    spec.maxEvents = 2000; // far too small to finish.
    auto r = runExperiment(w, spec);
    EXPECT_TRUE(r.run.timedOut);
    EXPECT_FALSE(r.run.verified);
}

INSTANTIATE_TEST_SUITE_P(
    Schedulers, TimeoutTest,
    testing::Values("obim", "minnow", "minnow-pf", "bsp"),
    [](const auto &info) {
        std::string n = info.param;
        for (char &c : n) {
            if (c == '-')
                c = '_';
        }
        return n;
    });

//
// Credit-count sweep: Minnow prefetching verifies at every credit
// level, including the degenerate single-credit pool.
//

class CreditTest : public testing::TestWithParam<std::uint32_t>
{
};

TEST_P(CreditTest, PrefetchVerifiesAtAnyCreditCount)
{
    Workload w = makeWorkload("bfs", 0.05, 21);
    RunSpec spec;
    spec.config = Config::MinnowPf;
    spec.threads = 4;
    spec.machine.numCores = 4;
    spec.machine.minnow.prefetchCredits = GetParam();
    auto r = runExperiment(w, spec);
    EXPECT_FALSE(r.run.timedOut);
    EXPECT_TRUE(r.run.verified);
}

INSTANTIATE_TEST_SUITE_P(Credits, CreditTest,
                         testing::Values(1, 2, 8, 32, 256));

//
// Thread-count sweep: every power of two verifies and total task
// counts stay sane.
//

class ThreadsTest : public testing::TestWithParam<std::uint32_t>
{
};

TEST_P(ThreadsTest, MinnowVerifiesAcrossThreadCounts)
{
    Workload w = makeWorkload("sssp", 0.05, 13);
    RunSpec spec;
    spec.config = Config::Minnow;
    spec.threads = GetParam();
    spec.machine.numCores = std::max(2u, GetParam());
    auto r = runExperiment(w, spec);
    EXPECT_FALSE(r.run.timedOut);
    EXPECT_TRUE(r.run.verified);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadsTest,
                         testing::Values(1, 2, 3, 4, 8, 16));

//
// Engine sharing: every sharing degree (Section 4's
// resource-reduction variant) must stay correct.
//

class SharingTest : public testing::TestWithParam<std::uint32_t>
{
};

TEST_P(SharingTest, SharedEnginesVerify)
{
    Workload w = makeWorkload("bfs", 0.05, 17);
    RunSpec spec;
    spec.config = Config::MinnowPf;
    spec.threads = 8;
    spec.machine.numCores = 8;
    spec.machine.minnow.coresPerEngine = GetParam();
    auto r = runExperiment(w, spec);
    EXPECT_FALSE(r.run.timedOut);
    EXPECT_TRUE(r.run.verified);
}

INSTANTIATE_TEST_SUITE_P(CoresPerEngine, SharingTest,
                         testing::Values(1, 2, 3, 4, 8));

} // anonymous namespace
} // namespace minnow
