/**
 * @file
 * Tests for the simulated-time timeline sink (sim/timeline.hh): ring
 * wrap semantics (oldest records dropped and counted, never an
 * unbalanced begin/end pair), track-category filtering, the
 * begin/end export order for nested spans, histogram percentiles,
 * the off-by-default contract (no trace, no stats group), full-run
 * determinism (same seed => byte-identical trace files), and the
 * --debug-file routing in base/trace.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "base/stats.hh"
#include "base/trace.hh"
#include "harness/workloads.hh"
#include "sim/timeline.hh"

namespace minnow
{
namespace
{

using timeline::Cat;
using timeline::Name;
using timeline::Pid;
using timeline::Timeline;
using timeline::TrackId;

std::size_t
countSub(const std::string &hay, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t pos = hay.find(needle);
         pos != std::string::npos;
         pos = hay.find(needle, pos + needle.size()))
        ++n;
    return n;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

// ---------------------------------------------------------------
// Ring buffer semantics.
// ---------------------------------------------------------------

TEST(TimelineRing, WrapDropsOldestAndCounts)
{
    Timeline tl(8, timeline::allCats());
    TrackId t = tl.addTrack(Cat::Task, Pid::Cores, 0, "core0");
    ASSERT_NE(t, timeline::kNoTrack);

    for (Cycle i = 0; i < 20; ++i)
        tl.span(t, Name::Task, i * 10, i * 10 + 5);

    EXPECT_EQ(tl.recorded(), 8u);
    EXPECT_EQ(tl.dropped(), 12u);
    EXPECT_EQ(tl.spans(), 20u);

    // Only the newest 8 spans survive, as balanced B/E pairs; the
    // oldest surviving span began at cycle 120.
    std::string json = tl.toJson();
    EXPECT_EQ(countSub(json, "\"ph\":\"B\""), 8u);
    EXPECT_EQ(countSub(json, "\"ph\":\"E\""), 8u);
    EXPECT_EQ(countSub(json, "\"ts\":110"), 0u);
    EXPECT_EQ(countSub(json, "\"ts\":120"), 1u);
}

TEST(TimelineRing, NoWrapWithinCapacity)
{
    Timeline tl(16, timeline::allCats());
    TrackId t = tl.addTrack(Cat::Task, Pid::Cores, 0, "core0");
    for (Cycle i = 0; i < 10; ++i)
        tl.span(t, Name::Task, i, i + 1);
    EXPECT_EQ(tl.recorded(), 10u);
    EXPECT_EQ(tl.dropped(), 0u);
}

// ---------------------------------------------------------------
// Category filtering.
// ---------------------------------------------------------------

TEST(TimelineTracks, ParseTracksFilters)
{
    std::uint32_t mask = timeline::parseTracks("task,credit");
    Timeline tl(4, mask);
    EXPECT_TRUE(tl.wants(Cat::Task));
    EXPECT_TRUE(tl.wants(Cat::Credit));
    EXPECT_FALSE(tl.wants(Cat::Threadlet));
    EXPECT_FALSE(tl.wants(Cat::Engine));

    EXPECT_EQ(timeline::parseTracks(""), timeline::allCats());
    EXPECT_EQ(timeline::parseTracks("all"), timeline::allCats());
    EXPECT_EQ(timeline::parseTracks(" task , sim "),
              timeline::parseTracks("task,sim"));
}

TEST(TimelineTracks, DisabledCategoryIsNoTrackNoop)
{
    Timeline tl(16, timeline::parseTracks("task"));
    TrackId t =
        tl.addTrack(Cat::Threadlet, Pid::Threadlets, 0, "lane0");
    EXPECT_EQ(t, timeline::kNoTrack);
    tl.span(t, Name::PrefetchTask, 0, 10); // must be a cheap no-op.
    tl.instant(t, Name::EngineKill, 5);
    tl.counter(t, 5, 1.0);
    EXPECT_EQ(tl.recorded(), 0u);
    EXPECT_EQ(tl.spans(), 0u);
}

// ---------------------------------------------------------------
// Export order: nested spans sharing a begin cycle must emit the
// enclosing B first and still balance.
// ---------------------------------------------------------------

TEST(TimelineJson, NestedEqualBeginSpansStayBalanced)
{
    Timeline tl(16, timeline::allCats());
    TrackId t = tl.addTrack(Cat::Task, Pid::Cores, 0, "core0");
    // Inner completes (and is recorded) first; both begin at 100.
    tl.span(t, Name::Dequeue, 100, 150);
    tl.span(t, Name::Task, 100, 300);

    std::string json = tl.toJson();
    std::size_t outerB =
        json.find("\"ph\":\"B\",\"pid\":1,\"tid\":0,\"ts\":100,"
                  "\"name\":\"task\"");
    std::size_t innerB =
        json.find("\"ph\":\"B\",\"pid\":1,\"tid\":0,\"ts\":100,"
                  "\"name\":\"dequeue\"");
    ASSERT_NE(outerB, std::string::npos);
    ASSERT_NE(innerB, std::string::npos);
    EXPECT_LT(outerB, innerB); // enclosing span opens first.
    EXPECT_EQ(countSub(json, "\"ph\":\"B\""), 2u);
    EXPECT_EQ(countSub(json, "\"ph\":\"E\""), 2u);
}

TEST(TimelineJson, CountersAndInstantsCarryValues)
{
    Timeline tl(16, timeline::allCats());
    TrackId c = tl.addCounterTrack(Cat::Credit, "minnow0.credits");
    tl.counter(c, 50, 32.0);
    tl.counter(c, 90, 7.5);
    tl.instant(tl.simTrack(), Name::WatchdogTrip, 70);

    std::string json = tl.toJson();
    EXPECT_NE(json.find("\"value\":32"), std::string::npos);
    EXPECT_NE(json.find("\"value\":7.5"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
    EXPECT_NE(json.find("watchdogTrip"), std::string::npos);
    EXPECT_EQ(tl.counterSamples(), 2u);
    EXPECT_EQ(tl.instants(), 1u);
}

// ---------------------------------------------------------------
// Histogram percentiles (the attribution report's p50/p95/p99).
// ---------------------------------------------------------------

TEST(HistogramPercentile, BucketUpperEdges)
{
    HistogramStat h("lat", "test", 10, 16);
    EXPECT_EQ(h.percentile(0.5), 0u); // empty => 0.
    for (std::uint64_t v = 0; v < 100; ++v)
        h.sample(v);
    // 100 samples spread evenly over buckets [0,10) .. [90,100):
    // the median falls in the 5th bucket, whose upper edge is 49.
    EXPECT_EQ(h.percentile(0.50), 49u);
    EXPECT_EQ(h.percentile(0.95), 99u);
    EXPECT_EQ(h.percentile(1.0), 99u);
}

// ---------------------------------------------------------------
// Full-run behaviour via the harness.
// ---------------------------------------------------------------

harness::ExperimentResult
runOnce(const std::string &timelinePath)
{
    harness::Workload w = harness::makeWorkload("sssp", 0.02, 1);
    harness::RunSpec rs;
    rs.config = harness::Config::MinnowPf;
    rs.threads = 4;
    rs.machine.numCores = 4;
    rs.machine.timelinePath = timelinePath;
    return harness::runExperiment(w, rs);
}

TEST(TimelineRun, DisabledEmitsNoGroupAndNoFile)
{
    harness::ExperimentResult r = runOnce("");
    EXPECT_FALSE(r.run.statsJson.empty());
    EXPECT_EQ(r.run.statsJson.find("\"timeline\":"),
              std::string::npos);
}

TEST(TimelineRun, EnabledRunsAreByteIdentical)
{
    std::string a = "timeline_test_a.json";
    std::string b = "timeline_test_b.json";
    harness::ExperimentResult ra = runOnce(a);
    harness::ExperimentResult rb = runOnce(b);

    // The stats snapshot carries the attribution report.
    EXPECT_NE(ra.run.statsJson.find("\"timeline\":"),
              std::string::npos);
    EXPECT_NE(ra.run.statsJson.find("\"dequeueP95\":"),
              std::string::npos);

    std::string ja = readFile(a);
    std::string jb = readFile(b);
    ASSERT_FALSE(ja.empty());
    EXPECT_EQ(ja, jb); // determinism contract.
    EXPECT_NE(ja.find("\"minnow-timeline-1\""), std::string::npos);
    EXPECT_NE(ja.find("\"ph\":\"B\""), std::string::npos);
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(TimelineRun, BatchedDequeueShiftsPopWaitDown)
{
    // The popWait track measures the worker-side pop latency the
    // dequeue bundling exists to amortize: k=4 must pull the P95
    // strictly below the one-round-trip-per-pop k=1 value.
    auto popWaitP95 = [](std::uint32_t k) {
        harness::Workload w = harness::makeWorkload("sssp", 0.05, 42);
        harness::RunSpec rs;
        rs.config = harness::Config::MinnowPf;
        rs.threads = 4;
        rs.machine.numCores = 4;
        rs.machine.minnow.dequeueBatch = k;
        rs.machine.timelinePath = "/dev/null";
        rs.machine.timelineTracks = "task";
        harness::ExperimentResult r = harness::runExperiment(w, rs);
        EXPECT_FALSE(r.run.timedOut);
        EXPECT_TRUE(r.run.verified);
        return r.run.report.get("timeline.popWaitP95");
    };
    double k1 = popWaitP95(1);
    double k4 = popWaitP95(4);
    EXPECT_LT(k4, k1)
        << "bundled dequeues must shift the popWait tail down";
}

TEST(TimelineRun, CreditHandoffsAreVisibleInTrace)
{
    // Satellite regression: a credit return handed straight to a
    // parked waiter never touches creditsFree_, so the counter
    // track's change detection can't see it — the engine must emit
    // an explicit instant (plus a counter spike) for each handoff.
    std::string path = "timeline_test_handoff.json";
    harness::Workload w = harness::makeWorkload("sssp", 0.02, 1);
    harness::RunSpec rs;
    rs.config = harness::Config::MinnowPf;
    rs.threads = 4;
    rs.machine.numCores = 4;
    rs.machine.minnow.prefetchCredits = 2; // starve => handoffs.
    rs.machine.timelinePath = path;
    harness::ExperimentResult r = harness::runExperiment(w, rs);
    EXPECT_FALSE(r.run.timedOut);
    ASSERT_GT(r.engines.creditHandoffs, 0u)
        << "2 credits on sssp must exercise the handoff path";
    std::string json = readFile(path);
    ASSERT_FALSE(json.empty());
    EXPECT_GE(countSub(json, "\"creditHandoff\""),
              1u);
    std::remove(path.c_str());
}

TEST(TimelineRun, CoexistsWithStatsIntervalSampler)
{
    // Regression: the timeline counter sampler and the
    // --stats-interval sampler are both self-rearming EventQueue
    // daemons; with a plain !empty() re-arm test they kept each
    // other alive forever and the run never terminated. Both armed
    // together must still drain.
    std::string path = "timeline_test_coexist.json";
    harness::Workload w = harness::makeWorkload("sssp", 0.02, 1);
    harness::RunSpec rs;
    rs.config = harness::Config::MinnowPf;
    rs.threads = 4;
    rs.machine.numCores = 4;
    rs.machine.timelinePath = path;
    rs.machine.statsSampleInterval = 5000;
    harness::ExperimentResult r = harness::runExperiment(w, rs);
    EXPECT_NE(r.run.statsJson.find("\"timeline\":"),
              std::string::npos);
    EXPECT_FALSE(readFile(path).empty());
    std::remove(path.c_str());
}

// ---------------------------------------------------------------
// --debug-file routing (base/trace.cc).
// ---------------------------------------------------------------

TEST(TraceOutputFile, RoutesRecordsToFile)
{
    std::string path = "timeline_test_debug.log";
    trace::setOutputFile(path);
    trace::print(trace::Flag::Exec, "test", "hello %d", 7);
    trace::setOutputFile(""); // back to stderr; closes the file.
    std::string log = readFile(path);
    EXPECT_NE(log.find("hello 7"), std::string::npos);
    EXPECT_NE(log.find("test"), std::string::npos);
    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace minnow
