/**
 * @file
 * Unit tests for the coroutine runtime: CoTask composition, the
 * event queue, SimContext awaitables, and WorkMonitor termination
 * semantics.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "runtime/machine.hh"
#include "runtime/sim_context.hh"
#include "runtime/task.hh"
#include "runtime/work_monitor.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"

namespace minnow::runtime
{
namespace
{

MachineConfig
tinyConfig(std::uint32_t cores = 2)
{
    MachineConfig cfg = scaledMachine();
    cfg.numCores = cores;
    return cfg;
}

TEST(EventQueue, OrdersByCycleThenSeq)
{
    EventQueue eq;
    std::vector<int> order;
    auto push = [&](Cycle when, int tag) {
        struct Ctx
        {
            std::vector<int> *order;
            int tag;
        };
        auto *c = new Ctx{&order, tag};
        eq.schedule(when, [](void *p) {
            auto *c = static_cast<Ctx *>(p);
            c->order->push_back(c->tag);
            delete c;
        }, c);
    };
    push(10, 1);
    push(5, 2);
    push(10, 3);
    push(1, 4);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{4, 2, 1, 3}));
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, StopEndsRun)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [](void *p) {
        auto *self = static_cast<std::pair<EventQueue *, int *> *>(p);
        (*self->second)++;
        self->first->stop();
        delete self;
    }, new std::pair<EventQueue *, int *>(&eq, &fired));
    eq.schedule(2, [](void *p) { (*static_cast<int *>(p))++; },
                &fired);
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.stopped());
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ExactBudgetOnLastEventDoesNotWarn)
{
    // Regression: a run whose event count landed exactly on the
    // budget used to warn "budget exhausted" even though the heap
    // had drained — every completed run at the limit looked like a
    // timeout.
    EventQueue eq;
    int fired = 0;
    for (Cycle t = 1; t <= 3; ++t)
        eq.schedule(t, [](void *p) { (*static_cast<int *>(p))++; },
                    &fired);

    clearWarnings();
    EXPECT_EQ(eq.run(3), 3u);
    EXPECT_EQ(fired, 3);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(warningsSeen());

    // A genuine timeout (work left behind) still warns.
    for (Cycle t = 1; t <= 3; ++t)
        eq.schedule(eq.now() + t,
                    [](void *p) { (*static_cast<int *>(p))++; },
                    &fired);
    clearWarnings();
    EXPECT_EQ(eq.run(2), 2u);
    EXPECT_FALSE(eq.empty());
    EXPECT_TRUE(warningsSeen());
    clearWarnings();
}

CoTask<int>
leaf(int v)
{
    co_return v * 2;
}

CoTask<int>
parent()
{
    int a = co_await leaf(3);
    int b = co_await leaf(4);
    co_return a + b;
}

TEST(CoTask, NestedComposition)
{
    CoTask<int> t = parent();
    EXPECT_FALSE(t.done());
    t.start();
    EXPECT_TRUE(t.done());
    EXPECT_EQ(t.result(), 14);
}

CoTask<void>
suspendingTask(EventQueue &eq, std::vector<Cycle> &trace)
{
    struct At
    {
        EventQueue *eq;
        Cycle when;
        bool await_ready() const { return false; }
        void await_suspend(std::coroutine_handle<> h)
        {
            eq->schedule(when, h);
        }
        void await_resume() const {}
    };
    trace.push_back(eq.now());
    co_await At{&eq, 100};
    trace.push_back(eq.now());
    co_await At{&eq, 250};
    trace.push_back(eq.now());
}

TEST(CoTask, ResumesAtScheduledCycles)
{
    EventQueue eq;
    std::vector<Cycle> trace;
    CoTask<void> t = suspendingTask(eq, trace);
    t.start();
    eq.run();
    EXPECT_EQ(trace, (std::vector<Cycle>{0, 100, 250}));
    EXPECT_TRUE(t.done());
}

TEST(Machine, ConstructsAndReports)
{
    Machine m(tinyConfig(4));
    EXPECT_EQ(m.cores.size(), 4u);
    EXPECT_EQ(m.makespan(), 0u);
    m.cores[2]->compute(100, 0);
    EXPECT_GT(m.makespan(), 0u);
    EXPECT_EQ(m.totalUops(), 100u);
}

CoTask<void>
atomicUser(SimContext &ctx, Addr addr, int &shared, int &observed)
{
    // Bound skew before touching shared state, as all runtime code
    // does (the per-line RMW serialization assumes call order is
    // within a sync quantum of simulated-time order).
    co_await ctx.sync();
    co_await ctx.atomicAccess(addr);
    observed = shared;
    shared += 1;
}

TEST(SimContext, AtomicLinearizes)
{
    Machine m(tinyConfig(2));
    SimContext c0(&m, 0), c1(&m, 1);
    Addr line = m.alloc.alloc("t", 64);
    int shared = 0, seen0 = -1, seen1 = -1;
    // Give core 1 a big head start so its RMW completes first
    // (compute retires 4 uops/cycle).
    m.cores[0]->compute(40000, 0);
    CoTask<void> t0 = atomicUser(c0, line, shared, seen0);
    CoTask<void> t1 = atomicUser(c1, line, shared, seen1);
    t0.start();
    t1.start();
    m.eq.run();
    EXPECT_TRUE(t0.done());
    EXPECT_TRUE(t1.done());
    // Core 1 went first (core 0 was busy), so it saw 0.
    EXPECT_EQ(seen1, 0);
    EXPECT_EQ(seen0, 1);
    EXPECT_EQ(shared, 2);
}

CoTask<void>
syncUser(SimContext &ctx, int &wakeups)
{
    for (int i = 0; i < 10; ++i) {
        ctx.compute(1000, 0); // run far ahead of global time.
        co_await ctx.sync();
        ++wakeups;
    }
}

TEST(SimContext, SyncBoundsSkew)
{
    Machine m(tinyConfig(1));
    SimContext ctx(&m, 0);
    int wakeups = 0;
    CoTask<void> t = syncUser(ctx, wakeups);
    t.start();
    m.eq.run();
    EXPECT_TRUE(t.done());
    EXPECT_EQ(wakeups, 10);
    // Global time caught up with the core.
    EXPECT_GE(m.eq.now() + m.cfg.syncQuantum,
              m.cores[0]->frontier());
}

TEST(WorkMonitor, ImmediateTerminationWhenAllIdleAndEmpty)
{
    EventQueue eq;
    WorkMonitor mon(&eq, 1);
    bool result = true;
    auto waiter = [](WorkMonitor &mon,
                     bool &result) -> CoTask<void> {
        result = co_await mon.waitForWork();
    };
    CoTask<void> t = waiter(mon, result);
    t.start();
    eq.run();
    EXPECT_TRUE(t.done());
    EXPECT_FALSE(result); // no work anywhere -> terminated.
    EXPECT_TRUE(mon.terminated());
}

TEST(WorkMonitor, WorkWakesParkedWorker)
{
    EventQueue eq;
    WorkMonitor mon(&eq, 2);
    std::vector<bool> results;
    auto waiter = [](WorkMonitor &mon,
                     std::vector<bool> &out) -> CoTask<void> {
        bool more = co_await mon.waitForWork();
        out.push_back(more);
    };
    CoTask<void> t0 = waiter(mon, results);
    t0.start(); // parks (worker 1 of 2 idle).
    EXPECT_EQ(mon.idleWorkers(), 1u);
    mon.addWork(1, true); // wakes it with "more work".
    eq.run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0]);
    EXPECT_FALSE(mon.terminated());
}

TEST(WorkMonitor, NonStealableWorkBlocksTermination)
{
    EventQueue eq;
    WorkMonitor mon(&eq, 2);
    mon.addWork(1, false); // private to some core.
    std::vector<bool> results;
    auto waiter = [](WorkMonitor &mon,
                     std::vector<bool> &out) -> CoTask<void> {
        out.push_back(co_await mon.waitForWork());
    };
    CoTask<void> t0 = waiter(mon, results);
    t0.start();
    eq.run();
    // Parked, not terminated: pending work exists (non-stealable).
    EXPECT_TRUE(results.empty());
    EXPECT_FALSE(mon.terminated());
    // The private work is consumed; second worker going idle now
    // triggers termination and releases the first.
    mon.takeWork(1, false);
    mon.enterIdle();
    eq.run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0]);
    EXPECT_TRUE(mon.terminated());
}

TEST(WorkMonitor, TransferWorkMovesStealability)
{
    EventQueue eq;
    WorkMonitor mon(&eq, 4);
    mon.addWork(8, true);
    EXPECT_EQ(mon.stealable(), 8u);
    mon.transferWork(8, false); // whole chunk grabbed privately.
    EXPECT_EQ(mon.stealable(), 0u);
    EXPECT_EQ(mon.pending(), 8u);
    mon.takeWork(8, false);
    EXPECT_EQ(mon.pending(), 0u);
}

TEST(WorkMonitor, TerminationHookFires)
{
    EventQueue eq;
    WorkMonitor mon(&eq, 1);
    bool hookFired = false;
    mon.subscribeTermination([&] { hookFired = true; });
    mon.enterIdle();
    EXPECT_TRUE(hookFired);
    EXPECT_TRUE(mon.terminated());
}

TEST(WorkMonitor, ParkedWorkerWakesWhenPrivateWorkTurnsStealable)
{
    // The engine-degradation handoff in a nutshell: a worker parks
    // while only private (non-stealable) work exists; rescuing that
    // work to the global queue is a transferWork(n, true), which
    // must wake the parked worker with "more work" rather than
    // letting it sleep to a false termination.
    EventQueue eq;
    WorkMonitor mon(&eq, 2);
    mon.addWork(1, false); // private to a (faulted) engine.
    std::vector<bool> results;
    auto waiter = [](WorkMonitor &mon,
                     std::vector<bool> &out) -> CoTask<void> {
        out.push_back(co_await mon.waitForWork());
    };
    CoTask<void> t0 = waiter(mon, results);
    t0.start();
    eq.run();
    EXPECT_TRUE(results.empty()); // parked: nothing stealable.
    mon.transferWork(1, true);    // the rescue.
    eq.run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0]);
    EXPECT_FALSE(mon.terminated());
    EXPECT_EQ(mon.stealable(), 1u);
    EXPECT_EQ(mon.pending(), 1u);
}

TEST(WorkMonitor, TerminationDeclaredExactlyOnce)
{
    EventQueue eq;
    WorkMonitor mon(&eq, 2);
    int hookFires = 0;
    mon.subscribeTermination([&] { hookFires += 1; });
    mon.addWork(2, false);
    mon.enterIdle(); // one worker idle, work pending: no trigger.
    mon.exitIdle();
    mon.takeWork(2, false);
    mon.enterIdle();
    mon.enterIdle(); // all idle && pending==0: terminates.
    EXPECT_TRUE(mon.terminated());
    // Further idle transitions must not re-fire the hooks.
    EXPECT_EQ(hookFires, 1);
}

TEST(EventQueue, DiagnosticHookFiresOnceOnBudgetExhaustion)
{
    EventQueue eq;
    int fired = 0;
    for (Cycle t = 1; t <= 3; ++t)
        eq.schedule(t, [](void *p) { (*static_cast<int *>(p))++; },
                    &fired);
    int hookCalls = 0;
    std::string reason;
    eq.setDiagnosticHook([&](const char *r) {
        hookCalls += 1;
        reason = r;
    });
    clearWarnings();
    EXPECT_EQ(eq.run(2), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(hookCalls, 1);
    EXPECT_EQ(reason, "event budget exhausted");
    clearWarnings();

    // A drained run must not call the hook.
    eq.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(hookCalls, 1);
}

TEST(PanicHooks, AddAndRemove)
{
    // Hooks are exercised for real by the death tests in
    // fault_test.cc; here only the registry plumbing is checked.
    static int calls;
    calls = 0;
    int id = addPanicHook([](void *) { calls += 1; }, nullptr);
    EXPECT_GT(id, 0);
    removePanicHook(id);
    removePanicHook(id); // double-remove is harmless.
}

} // anonymous namespace
} // namespace minnow::runtime
