/**
 * @file
 * Unit tests for src/base: RNG determinism, bit helpers, simulated
 * allocator, statistics, options parsing, and table formatting.
 */

#include <gtest/gtest.h>

#include "base/bits.hh"
#include "base/options.hh"
#include "base/rng.hh"
#include "base/sim_alloc.hh"
#include "base/stats.hh"
#include "base/table.hh"
#include "base/types.hh"

namespace minnow
{
namespace
{

TEST(Types, LineMath)
{
    EXPECT_EQ(lineAddr(0), 0u);
    EXPECT_EQ(lineAddr(63), 0u);
    EXPECT_EQ(lineAddr(64), 64u);
    EXPECT_EQ(lineAddr(0x12345), 0x12340u);
    EXPECT_EQ(lineNum(128), 2u);
    EXPECT_EQ(lineNum(127), 1u);
}

TEST(Bits, PowersOfTwo)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_TRUE(isPow2(1024));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(3));
    EXPECT_FALSE(isPow2(1023));
}

TEST(Bits, Logs)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(Bits, Align)
{
    EXPECT_EQ(alignUp(0, 64), 0u);
    EXPECT_EQ(alignUp(1, 64), 64u);
    EXPECT_EQ(alignUp(64, 64), 64u);
    EXPECT_EQ(alignDown(127, 64), 64u);
}

TEST(Bits, HashMixSpreads)
{
    // Consecutive line numbers should land on many distinct residues.
    std::set<std::uint64_t> banks;
    for (std::uint64_t i = 0; i < 256; ++i)
        banks.insert(hashMix(i) % 64);
    EXPECT_GT(banks.size(), 48u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        std::uint64_t va = a.next();
        EXPECT_EQ(va, b.next());
        (void)c.next();
    }
    Rng a2(42), c2(43);
    EXPECT_NE(a2.next(), c2.next());
}

TEST(Rng, RealRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        double v = r.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng r(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, BelowBounds)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(SimAlloc, LineAlignedAndDisjoint)
{
    SimAlloc alloc;
    Addr a = alloc.alloc("a", 10);
    Addr b = alloc.alloc("b", 100);
    Addr c = alloc.allocAnon(1);
    EXPECT_EQ(a % kLineBytes, 0u);
    EXPECT_EQ(b % kLineBytes, 0u);
    EXPECT_EQ(c % kLineBytes, 0u);
    EXPECT_GE(b, a + 10);
    EXPECT_GE(c, b + 100);
    EXPECT_EQ(alloc.regions().size(), 2u);
    EXPECT_GE(alloc.bytesAllocated(), 3 * kLineBytes);
}

TEST(SimAlloc, ZeroSizeStillDistinct)
{
    SimAlloc alloc;
    Addr a = alloc.allocAnon(0);
    Addr b = alloc.allocAnon(0);
    EXPECT_NE(a, b);
}

TEST(Stats, Average)
{
    StatAverage avg;
    EXPECT_EQ(avg.mean(), 0.0);
    avg.sample(1.0);
    avg.sample(3.0);
    EXPECT_DOUBLE_EQ(avg.mean(), 2.0);
    EXPECT_DOUBLE_EQ(avg.min(), 1.0);
    EXPECT_DOUBLE_EQ(avg.max(), 3.0);
    EXPECT_EQ(avg.count(), 2u);
    avg.reset();
    EXPECT_EQ(avg.count(), 0u);
}

TEST(Stats, Histogram)
{
    StatHistogram h;
    h.sample(0);
    h.sample(1);
    h.sample(100);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_NEAR(h.mean(), 101.0 / 3.0, 1e-9);
    EXPECT_EQ(h.bucket(0), 1u); // value 0.
}

TEST(Stats, HistogramPercentile)
{
    StatHistogram h;
    for (int i = 0; i < 90; ++i)
        h.sample(1);
    for (int i = 0; i < 10; ++i)
        h.sample(1000);
    EXPECT_LE(h.percentile(0.5), 1u);
    EXPECT_GE(h.percentile(0.99), 512u);
}

TEST(Stats, Report)
{
    StatsReport r;
    r.add("a.b", 1.5);
    EXPECT_TRUE(r.has("a.b"));
    EXPECT_FALSE(r.has("a.c"));
    EXPECT_DOUBLE_EQ(r.get("a.b"), 1.5);
    EXPECT_DOUBLE_EQ(r.get("a.c", -1), -1.0);
}

TEST(Options, Parsing)
{
    Options opts({"--cores=16", "--minnow", "--ratio=0.5",
                  "--name=foo", "input.gr"});
    EXPECT_EQ(opts.getUint("cores", 1), 16u);
    EXPECT_TRUE(opts.getBool("minnow", false));
    EXPECT_DOUBLE_EQ(opts.getDouble("ratio", 0), 0.5);
    EXPECT_EQ(opts.getString("name", ""), "foo");
    EXPECT_EQ(opts.getInt("missing", -3), -3);
    ASSERT_EQ(opts.positional().size(), 1u);
    EXPECT_EQ(opts.positional()[0], "input.gr");
    opts.rejectUnused(); // everything was consumed; must not die.
}

TEST(Options, BoolSpellings)
{
    Options opts({"--a=yes", "--b=off", "--c=1", "--d=false"});
    EXPECT_TRUE(opts.getBool("a", false));
    EXPECT_FALSE(opts.getBool("b", true));
    EXPECT_TRUE(opts.getBool("c", false));
    EXPECT_FALSE(opts.getBool("d", true));
}

TEST(Options, NegativeInt)
{
    Options opts({"--x=-5"});
    EXPECT_EQ(opts.getInt("x", 0), -5);
}

TEST(Table, Format)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::count(0), "0");
    EXPECT_EQ(TextTable::count(999), "999");
    EXPECT_EQ(TextTable::count(1000), "1,000");
    EXPECT_EQ(TextTable::count(1234567), "1,234,567");
}

} // anonymous namespace
} // namespace minnow
